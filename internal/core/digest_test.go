package core

import (
	"errors"
	"reflect"
	"testing"

	"nicwarp/internal/apps/phold"
	"nicwarp/internal/hostmodel"
	"nicwarp/internal/iobus"
	"nicwarp/internal/mpich"
	"nicwarp/internal/nic"
	"nicwarp/internal/simnet"
	"nicwarp/internal/timewarp"
	"nicwarp/internal/vtime"
)

// digestBase returns a config with every field away from its zero value, so
// a per-field mutation cannot collide with WithDefaults normalization.
func digestBase() Config {
	return Config{
		App:              phold.New(phold.Params{Objects: 8, Population: 1, Hops: 40, MeanDelay: 50, Locality: 0.2}),
		Nodes:            4,
		Seed:             7,
		GVT:              GVTNIC,
		GVTPeriod:        123,
		GVTFallbackDelay: 55 * vtime.Microsecond,
		EarlyCancel:      true,
		DropBufferCap:    17,
		Cancellation:     timewarp.Aggressive,
		Costs:            hostmodel.DefaultCostTable(),
		NIC:              nic.DefaultConfig(),
		Net:              simnet.DefaultConfig(),
		Bus:              iobus.DefaultConfig(),
		Flow:             mpich.DefaultConfig(),
		MaxModelTime:     3 * vtime.Second,
		VerifyOracle:     true,
		SampleEvery:      9 * vtime.Millisecond,
	}
}

// mutateLeaf changes the first mutable scalar leaf reachable under v and
// reports whether it found one.
func mutateLeaf(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
		return true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
		return true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
		return true
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float()*2 + 1)
		return true
	case reflect.String:
		v.SetString(v.String() + "x")
		return true
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() && mutateLeaf(v.Field(i)) {
				return true
			}
		}
	case reflect.Ptr:
		if !v.IsNil() {
			return mutateLeaf(v.Elem())
		}
	}
	return false
}

// TestDigestSensitiveToEveryField asserts the cache key covers the full
// exported Config surface: mutating any field (or, for the App interface
// and embedded hardware structs, a scalar inside it) changes the digest.
func TestDigestSensitiveToEveryField(t *testing.T) {
	base := digestBase().Digest()
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		cfg := digestBase()
		v := reflect.ValueOf(&cfg).Elem().Field(i)
		switch f.Name {
		case "App":
			// Swap for an app differing only in one parameter.
			cfg.App = phold.New(phold.Params{Objects: 8, Population: 1, Hops: 41, MeanDelay: 50, Locality: 0.2})
		default:
			if !mutateLeaf(v) {
				t.Fatalf("field %s: no mutable scalar leaf found", f.Name)
			}
		}
		if got := cfg.Digest(); got == base {
			t.Errorf("field %s: digest unchanged after mutation", f.Name)
		}
	}
}

// TestDigestNormalizesDefaults asserts a zero field and its explicit
// default share a digest (they describe the same experiment).
func TestDigestNormalizesDefaults(t *testing.T) {
	app := phold.New(phold.Params{Objects: 8, Population: 1, Hops: 40, MeanDelay: 50})
	zero := Config{App: app, Nodes: 4, Seed: 1}
	expl := Config{App: app, Nodes: 4, Seed: 1, GVTPeriod: 1000,
		Costs: hostmodel.DefaultCostTable(), NIC: nic.DefaultConfig(),
		Net: simnet.DefaultConfig(), Bus: iobus.DefaultConfig(), Flow: mpich.DefaultConfig(),
		MaxModelTime: 24 * 3600 * vtime.Second}
	if zero.Digest() != expl.Digest() {
		t.Fatalf("zero config and explicit defaults digest differently:\n %s\n %s",
			zero.Digest(), expl.Digest())
	}
}

// TestDigestStable asserts repeated digests of the same config are
// identical (no map-order or pointer-identity leakage) and that distinct
// app types do not collide.
func TestDigestStable(t *testing.T) {
	a, b := digestBase(), digestBase()
	if a.Digest() != b.Digest() {
		t.Fatalf("same config, different digests")
	}
	for i := 0; i < 10; i++ {
		if a.Digest() != b.Digest() {
			t.Fatalf("digest unstable on iteration %d", i)
		}
	}
}

// TestDigestGolden pins the digest of a fixed config across processes and
// builds: the on-disk cache (runner.DiskCache) is only sound if the key a
// fresh process computes matches the key a previous process stored. The
// constant must change exactly when Config's canonical shape changes — if
// you extend Config (or a struct it embeds), update the constant AND clear
// results/cache/.
func TestDigestGolden(t *testing.T) {
	cfg := Config{App: phold.New(phold.Params{Objects: 8, Population: 1, Hops: 40, MeanDelay: 50, Locality: 0.2}), Nodes: 4, Seed: 7}
	const golden = "3969f28328fd63275592b36b68b31eb2d01fb478560af838e936dcab65d73515"
	if got := cfg.Digest(); got != golden {
		t.Fatalf("digest of the pinned config changed:\n got  %s\n want %s\n"+
			"(expected only when Config's shape changes; update the constant and clear results/cache/)", got, golden)
	}
}

// TestValidateFieldErrors asserts Validate reports typed field errors that
// name the offending field.
func TestValidateFieldErrors(t *testing.T) {
	app := phold.New(phold.Params{Objects: 8, Population: 1, Hops: 40, MeanDelay: 50})
	cases := []struct {
		cfg   Config
		field string
	}{
		{Config{Nodes: 4, GVTPeriod: 10}, "App"},
		{Config{App: app, Nodes: 0, GVTPeriod: 10}, "Nodes"},
		{Config{App: app, Nodes: 4, GVTPeriod: 0}, "GVTPeriod"},
		{Config{App: app, Nodes: 4, GVTPeriod: 10, GVT: GVTMode(99)}, "GVT"},
		{Config{App: app, Nodes: 4, GVTPeriod: 10, EarlyCancel: true, Cancellation: timewarp.Lazy}, "EarlyCancel"},
		{Config{App: app, Nodes: 4, GVTPeriod: 10, EarlyCancel: true, GVT: GVTPGVT}, "EarlyCancel"},
	}
	for _, c := range cases {
		cfg := c.cfg
		cfg.Costs = hostmodel.DefaultCostTable()
		cfg.Flow = mpich.DefaultConfig()
		err := cfg.Validate()
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Fatalf("want *FieldError for %s, got %v", c.field, err)
		}
		if fe.Field != c.field {
			t.Errorf("want field %s, got %s (%v)", c.field, fe.Field, fe)
		}
	}
}

// TestParseGVTMode asserts the accepted spellings resolve and unknown names
// produce a FieldError listing the choices.
func TestParseGVTMode(t *testing.T) {
	for name, want := range map[string]GVTMode{
		"mattern": GVTHostMattern, "nic": GVTNIC, "nic-gvt": GVTNIC, "pgvt": GVTPGVT,
		"tree": GVTNICTree, "nic-tree": GVTNICTree,
	} {
		got, err := ParseGVTMode(name)
		if err != nil || got != want {
			t.Errorf("ParseGVTMode(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseGVTMode("fig9")
	var fe *FieldError
	if !errors.As(err, &fe) || fe.Field != "GVT" {
		t.Fatalf("want GVT FieldError for unknown mode, got %v", err)
	}
	// Modes round-trip through their String form.
	for _, m := range []GVTMode{GVTHostMattern, GVTNIC, GVTPGVT, GVTNICTree} {
		got, err := ParseGVTMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseGVTMode(%v.String()) = %v, %v", m, got, err)
		}
	}
}
