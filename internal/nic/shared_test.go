package nic

import (
	"testing"
	"testing/quick"

	"nicwarp/internal/vtime"
)

func TestNewSharedWindowDefaults(t *testing.T) {
	w := NewSharedWindow()
	if w.HostTMin != vtime.Infinity {
		t.Fatal("HostTMin must start at infinity")
	}
	if w.LatestGVT != -1 {
		t.Fatal("LatestGVT must start below any valid virtual time")
	}
	if w.Dropped == nil || w.Dropped.Cap() != DefaultDropBufferCap {
		t.Fatal("drop buffer must exist with the default capacity")
	}
	if PaperDropBufferCap != 10 {
		t.Fatal("the paper's buffer size is 10")
	}
}

func TestDropBufferRecordTake(t *testing.T) {
	b := NewDropBuffer(4)
	b.Record(1, DropKey{ID: 100})
	b.Record(1, DropKey{ID: 200})
	b.Record(2, DropKey{ID: 100})
	if !b.Contains(1, DropKey{ID: 100}) || !b.Contains(2, DropKey{ID: 100}) {
		t.Fatal("Contains")
	}
	if b.Contains(1, DropKey{ID: 999}) {
		t.Fatal("phantom entry")
	}
	if !b.Take(1, DropKey{ID: 100}) {
		t.Fatal("Take should succeed")
	}
	if b.Contains(1, DropKey{ID: 100}) {
		t.Fatal("Take must consume the entry")
	}
	if b.Take(1, DropKey{ID: 100}) {
		t.Fatal("second Take must fail")
	}
	if b.Len(1) != 1 || b.Len(2) != 1 || b.TotalLen() != 2 {
		t.Fatalf("lengths: %d %d %d", b.Len(1), b.Len(2), b.TotalLen())
	}
	if b.Takes.Value() != 1 || b.Misses.Value() != 1 {
		t.Fatalf("takes=%d misses=%d", b.Takes.Value(), b.Misses.Value())
	}
}

func TestDropBufferEviction(t *testing.T) {
	b := NewDropBuffer(3)
	for id := uint64(0); id < 5; id++ {
		b.Record(7, DropKey{ID: id})
	}
	if b.Len(7) != 3 {
		t.Fatalf("len = %d, want capacity 3", b.Len(7))
	}
	if b.Evictions.Value() != 2 {
		t.Fatalf("evictions = %d, want 2", b.Evictions.Value())
	}
	// Oldest entries evicted, newest retained.
	if b.Contains(7, DropKey{ID: 0}) || b.Contains(7, DropKey{ID: 1}) {
		t.Fatal("oldest entries should be evicted")
	}
	if !b.Contains(7, DropKey{ID: 4}) {
		t.Fatal("newest entry missing")
	}
}

func TestDropBufferPerObjectIsolation(t *testing.T) {
	b := NewDropBuffer(2)
	b.Record(1, DropKey{ID: 5})
	b.Record(2, DropKey{ID: 5})
	if !b.Take(1, DropKey{ID: 5}) {
		t.Fatal("take obj1")
	}
	if !b.Contains(2, DropKey{ID: 5}) {
		t.Fatal("obj2 entry must survive obj1 take")
	}
}

func TestDropBufferZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropBuffer(0)
}

// TestDropBufferConservation: every recorded ID is either still present,
// was taken, or was evicted — records = takes + evictions + remaining.
func TestDropBufferConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewDropBuffer(3)
		id := uint64(0)
		for _, op := range ops {
			obj := int32(op % 4)
			if op%3 == 0 {
				id++
				b.Record(obj, DropKey{ID: id})
			} else {
				b.Take(obj, DropKey{ID: uint64(op)})
			}
		}
		return b.Records.Value() == b.Takes.Value()+b.Evictions.Value()+int64(b.TotalLen())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
