package vtime

import (
	"testing"
	"testing/quick"
)

func TestVTimeInfinity(t *testing.T) {
	if !Infinity.IsInf() {
		t.Fatal("Infinity.IsInf() = false")
	}
	if VTime(0).IsInf() {
		t.Fatal("0.IsInf() = true")
	}
	if Infinity.String() != "inf" {
		t.Fatalf("Infinity.String() = %q", Infinity.String())
	}
	if VTime(42).String() != "42" {
		t.Fatalf("VTime(42).String() = %q", VTime(42).String())
	}
}

func TestMinMaxV(t *testing.T) {
	cases := []struct{ a, b, min, max VTime }{
		{1, 2, 1, 2},
		{2, 1, 1, 2},
		{5, 5, 5, 5},
		{Infinity, 3, 3, Infinity},
		{-1, 0, -1, 0},
	}
	for _, c := range cases {
		if got := MinV(c.a, c.b); got != c.min {
			t.Errorf("MinV(%v,%v) = %v, want %v", c.a, c.b, got, c.min)
		}
		if got := MaxV(c.a, c.b); got != c.max {
			t.Errorf("MaxV(%v,%v) = %v, want %v", c.a, c.b, got, c.max)
		}
	}
}

func TestMinVProperties(t *testing.T) {
	// MinV is commutative and idempotent; Infinity is its identity.
	f := func(a, b int64) bool {
		x, y := VTime(a), VTime(b)
		return MinV(x, y) == MinV(y, x) &&
			MinV(x, x) == x &&
			MinV(x, Infinity) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSat(t *testing.T) {
	cases := []struct{ a, b, want VTime }{
		{0, 0, 0},
		{10, 5, 15},
		{10, -5, 5},
		{Infinity, 1, Infinity},
		{1, Infinity, Infinity},
		{Infinity, Infinity, Infinity},
		{Infinity - 1, 1, Infinity},    // exact saturation boundary
		{Infinity - 1, 1000, Infinity}, // overflow past the boundary
		{Infinity - 1000, 999, Infinity - 1},
	}
	for _, c := range cases {
		if got := AddSat(c.a, c.b); got != c.want {
			t.Errorf("AddSat(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAddSatUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSat underflow did not panic")
		}
	}()
	AddSat(VTime(-1<<63), VTime(-1))
}

func TestAdvance(t *testing.T) {
	if got := Advance(10, 5); got != 15 {
		t.Fatalf("Advance(10,5) = %v", got)
	}
	if got := Advance(Infinity, 5); !got.IsInf() {
		t.Fatalf("Advance(Infinity,5) = %v", got)
	}
	if got := Advance(Infinity-1, 2); !got.IsInf() {
		t.Fatalf("Advance(Infinity-1,2) = %v", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance with negative delay did not panic")
		}
	}()
	Advance(10, -1)
}

func TestAddSatProperties(t *testing.T) {
	// AddSat is commutative, saturates at Infinity, and agrees with plain
	// addition whenever the exact sum is representable and non-negative.
	f := func(a, b uint32) bool {
		x, y := VTime(a), VTime(b)
		return AddSat(x, y) == AddSat(y, x) &&
			AddSat(x, y) == x+y &&
			AddSat(x, Infinity).IsInf()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelTimeUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d ns", Microsecond)
	}
	if Second != 1e9 {
		t.Fatalf("Second = %d ns", Second)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("(2s).Seconds() = %v", got)
	}
	if ModelInfinity.String() != "inf" {
		t.Fatalf("ModelInfinity.String() = %q", ModelInfinity.String())
	}
}

func TestTransferTime(t *testing.T) {
	// 1500 bytes over 150 MB/s is 10 microseconds.
	got := TransferTime(1500, 150e6)
	if got != 10*Microsecond {
		t.Fatalf("TransferTime = %v, want 10us", got)
	}
	if TransferTime(0, 1e9) != 0 {
		t.Fatal("zero-size transfer should cost 0")
	}
	if TransferTime(1, 1e18) < 1 {
		t.Fatal("nonempty transfer must take at least 1 ns")
	}
}

func TestTransferTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nonpositive bandwidth")
		}
	}()
	TransferTime(10, 0)
}

func TestCycles(t *testing.T) {
	// 66 cycles at 66 MHz is 1 microsecond.
	got := Cycles(66, 66e6)
	if got != Microsecond {
		t.Fatalf("Cycles(66, 66MHz) = %v, want 1us", got)
	}
	if Cycles(0, 66e6) != 0 {
		t.Fatal("zero cycles should cost 0")
	}
	if Cycles(1, 1e18) < 1 {
		t.Fatal("nonzero cycles must take at least 1 ns")
	}
}

func TestCyclesMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return Cycles(x, 66e6) <= Cycles(y, 66e6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxM(t *testing.T) {
	if MinM(3, 5) != 3 || MinM(5, 3) != 3 {
		t.Fatal("MinM")
	}
	if MaxM(3, 5) != 5 || MaxM(5, 3) != 5 {
		t.Fatal("MaxM")
	}
}

func TestModelTimeString(t *testing.T) {
	if (1500 * Nanosecond).String() != "1.5µs" {
		t.Fatalf("String = %q", (1500 * Nanosecond).String())
	}
	if (2 * Second).Duration() != 2*1e9 {
		t.Fatal("Duration")
	}
}

func TestCyclesPanicsOnBadFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cycles(10, 0)
}
