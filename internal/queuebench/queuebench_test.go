package queuebench

import (
	"strings"
	"testing"
)

// BenchmarkQueue exposes every case under `go test -bench Queue`; the
// sub-benchmark names match the keys cmd/experiments -benchqueue writes to
// results/BENCH_queue.json, so ad-hoc runs and the CI gate agree.
func BenchmarkQueue(b *testing.B) {
	for _, c := range Cases() {
		b.Run(c.Name, c.Bench)
	}
}

// TestCasesRunOneOp sanity-runs every case for a single iteration at the
// smallest depth so plain `go test` catches API drift without paying
// benchmark prefill costs for the deep variants.
func TestCasesRunOneOp(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if testing.Short() || !strings.HasSuffix(c.Name, "depth=1000") {
				t.Skip("deep variants exercised by -bench only")
			}
			res := testing.Benchmark(func(b *testing.B) {
				if b.N > 1 {
					b.Skip()
				}
				c.Bench(b)
			})
			_ = res
		})
	}
}
