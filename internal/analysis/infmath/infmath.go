// Package infmath flags unchecked arithmetic on vtime.VTime operands.
//
// vtime.Infinity (math.MaxInt64) is a legal, load-bearing VTime value: an
// idle LP reports LVT = Infinity, and Infinity is the identity of every GVT
// min-reduction. Plain `t + delta` therefore wraps negative the moment an
// infinite (or merely large) timestamp flows in, and a negative "minimum"
// silently drags GVT backwards — the worst possible failure, because fossil
// collection then destroys state that a straggler still needs.
//
// The analyzer flags +, -, * on VTime operands (binary expressions,
// compound assignments and ++/--). Compliant alternatives:
//
//   - vtime.AddSat / vtime.Advance, the checked helpers that saturate at
//     Infinity;
//   - a `//nicwarp:finite <reason>` annotation when every operand is
//     provably below Infinity at the site.
//
// Comparisons and vtime.MinV/MaxV are always safe and never flagged;
// all-constant expressions are ignored.
package infmath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"nicwarp/internal/analysis/framework"
)

// VTimePkg is the import path of the clock-types package.
const VTimePkg = "nicwarp/internal/vtime"

// Analyzer implements the infmath check.
var Analyzer = &framework.Analyzer{
	Name: "infmath",
	Doc: "flag unchecked +/-/* on vtime.VTime (Infinity wraps around); use " +
		"vtime.AddSat/Advance or annotate //nicwarp:finite",
	Run: run,
}

func isVTime(pass *framework.Pass, e ast.Expr) bool {
	return framework.IsNamed(pass.TypesInfo.TypeOf(e), VTimePkg, "VTime")
}

// vtimeQualifier returns the file-local name under which the vtime package
// is imported ("vtime" unless renamed), or "" when it is not imported or
// dot-imported — in which case no textual rewrite is offered.
func vtimeQualifier(file *ast.File) string {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != VTimePkg {
			continue
		}
		if imp.Name == nil {
			return "vtime"
		}
		if imp.Name.Name == "." || imp.Name.Name == "_" {
			return ""
		}
		return imp.Name.Name
	}
	return ""
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == VTimePkg {
		return nil // the checked helpers themselves live here
	}
	for _, file := range pass.Files {
		vtimeName := vtimeQualifier(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL:
				default:
					return true
				}
				if !isVTime(pass, n.X) && !isVTime(pass, n.Y) {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value != nil {
					return true // constant-folded, checked at compile time
				}
				if pass.Annotated(n.Pos(), "finite") {
					return true
				}
				d := framework.Diagnostic{
					Pos: n.Pos(),
					Message: fmt.Sprintf(
						"unchecked %q on vtime.VTime may wrap past Infinity; use "+
							"vtime.AddSat/vtime.Advance or annotate //nicwarp:finite <reason>",
						n.Op.String()),
				}
				// The a+b form has a drop-in saturating replacement; offer it
				// as a mechanical rewrite for `nicwarp-vet -fix`.
				if n.Op == token.ADD && vtimeName != "" && isVTime(pass, n) {
					d.Fixes = []framework.SuggestedFix{{
						Message: "replace with " + vtimeName + ".AddSat",
						Edits: []framework.TextEdit{{
							Pos: n.Pos(),
							End: n.End(),
							NewText: vtimeName + ".AddSat(" +
								types.ExprString(n.X) + ", " + types.ExprString(n.Y) + ")",
						}},
					}}
				}
				pass.Report(d)
			case *ast.AssignStmt:
				switch n.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
				default:
					return true
				}
				if len(n.Lhs) != 1 || !isVTime(pass, n.Lhs[0]) {
					return true
				}
				if pass.Annotated(n.Pos(), "finite") {
					return true
				}
				pass.Reportf(n.Pos(),
					"unchecked %q on vtime.VTime may wrap past Infinity; use "+
						"vtime.AddSat/vtime.Advance or annotate //nicwarp:finite <reason>",
					n.Tok.String())
			case *ast.IncDecStmt:
				if !isVTime(pass, n.X) {
					return true
				}
				if pass.Annotated(n.Pos(), "finite") {
					return true
				}
				pass.Reportf(n.Pos(),
					"unchecked %q on vtime.VTime may wrap past Infinity; use "+
						"vtime.AddSat/vtime.Advance or annotate //nicwarp:finite <reason>",
					n.Tok.String())
			}
			return true
		})
	}
	return nil
}
