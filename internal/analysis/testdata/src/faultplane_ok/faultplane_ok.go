// Package faultplane_ok mirrors the determinism-sensitive idioms of the
// fault-injection subsystem (internal/fault, internal/invariant,
// internal/stress) and must be silent under every analyzer: fault
// decisions from seeded streams only, hole-set folds annotated as
// order-insensitive, per-pair walks over sorted keys, and clock domains
// kept apart.
package faultplane_ok

import (
	"sort"

	"nicwarp/internal/vtime"
)

// stream is the xorshift64* shape the fault plane derives per component —
// one word of seeded state, no ambient entropy anywhere.
type stream struct{ s uint64 }

func (r *stream) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// decide draws one fault fate per packet from the per-port stream: the
// whole schedule replays from the seed.
func decide(r *stream, dropProb uint64) bool {
	return r.next()%100 < dropProb
}

// outstanding is the invariant checker's hole-accounting fold: a
// commutative sum, annotated as such.
func outstanding(missing map[int32]map[uint64]struct{}) int {
	total := 0
	//nicwarp:ordered commutative sum over hole sets
	for _, holes := range missing {
		total += len(holes)
	}
	return total
}

// touchedPeers collects and sorts before use — the shape the quiescence
// checks walk flow-control pairs in.
func touchedPeers(credits map[int32]int) []int32 {
	peers := make([]int32, 0, len(credits))
	for p := range credits {
		peers = append(peers, p)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	return peers
}

// retxAfter keeps the retransmission delay in the hardware clock domain;
// the packet's virtual timestamp never leaks into it.
func retxAfter(base, retx vtime.ModelTime) vtime.ModelTime {
	return base + retx
}
