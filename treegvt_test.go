package nicwarp

import (
	"testing"

	"nicwarp/internal/core"
	"nicwarp/internal/simnet"
	"nicwarp/internal/stress"
	"nicwarp/internal/vtime"
)

// netWith returns the full fabric defaults with the given topology, the
// shape Config.Net must have for a non-crossbar run (a partially-filled
// Net would suppress WithDefaults' zero-struct check).
func netWith(topo simnet.Topology) simnet.Config {
	net := simnet.DefaultConfig()
	net.Topology = topo
	return net
}

// treeTestConfig is a small PHOLD cluster configuration for the tree-GVT
// property tests: big enough to roll back and keep tokens in flight,
// small enough for -race.
func treeTestConfig(nodes int, mode GVTMode, net simnet.Config) Config {
	return Config{
		App:       PHOLD(PHOLDParams{Objects: 2 * nodes, Population: 1, Hops: 25, MeanDelay: 40, Locality: 0.2}),
		Nodes:     nodes,
		Seed:      11,
		GVT:       mode,
		GVTPeriod: 50,
		Net:       net,
	}
}

// TestTreeCommitsRespectSerialOracle is the tree-GVT safety property: every
// committed GVT must lower-bound the true min(LVT, in-transit min) the
// serial invariant oracle tracks, and the committed state must match the
// sequential oracle exactly. A single unsafe commit (a tree round that
// missed an in-transit white message) trips the gvt-safety oracle; a wrong
// rollback trips the digest comparison.
func TestTreeCommitsRespectSerialOracle(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes int
		net   simnet.Config
	}{
		{"crossbar/8", 8, simnet.Config{}},
		{"fattree/16", 16, netWith(simnet.TopoFatTree)},
		{"dragonfly/16", 16, netWith(simnet.TopoDragonfly)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := treeTestConfig(tc.nodes, GVTNICTree, tc.net)
			cfg.VerifyOracle = true
			cfg.CheckInvariants = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep := res.Invariants; rep != nil && len(rep.Violations) > 0 {
				t.Fatalf("invariant violations: %v", rep.Violations)
			}
			if !res.FinalGVT.IsInf() {
				t.Fatalf("final GVT = %v, want inf (all events committed)", res.FinalGVT)
			}
			if res.GVTConvCount == 0 {
				t.Fatal("no convergence samples recorded at the root")
			}
			if res.GVTConvAvg() <= 0 || res.GVTConvMax < res.GVTConvAvg() {
				t.Fatalf("convergence stats inconsistent: avg %v, max %v",
					res.GVTConvAvg(), res.GVTConvMax)
			}
		})
	}
}

// TestTreeDigestMatchesRing asserts the ring and tree reductions commit
// the same simulation: identical committed digests and event counts on
// every topology and on both figure workload families. GVT timing differs
// between the modes (different rounds, different control traffic), but
// committed state is timing-independent — that is the Time Warp
// correctness contract the two reductions must share.
func TestTreeDigestMatchesRing(t *testing.T) {
	cases := []struct {
		name string
		cfg  func(GVTMode) Config
	}{
		{"phold/crossbar/8", func(m GVTMode) Config { return treeTestConfig(8, m, simnet.Config{}) }},
		{"phold/fattree/16", func(m GVTMode) Config { return treeTestConfig(16, m, netWith(simnet.TopoFatTree)) }},
		{"phold/dragonfly/16", func(m GVTMode) Config { return treeTestConfig(16, m, netWith(simnet.TopoDragonfly)) }},
		{"raid/fattree/8", func(m GVTMode) Config {
			return Config{
				App:   RAID(RAIDGVTConfig(400)),
				Nodes: 8, Seed: 1, GVT: m, GVTPeriod: 50,
				Net: netWith(simnet.TopoFatTree),
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ring, err := Run(tc.cfg(GVTNIC))
			if err != nil {
				t.Fatal(err)
			}
			tree, err := Run(tc.cfg(GVTNICTree))
			if err != nil {
				t.Fatal(err)
			}
			if ring.Digest != tree.Digest {
				t.Errorf("digest mismatch: ring %016x, tree %016x", ring.Digest, tree.Digest)
			}
			if ring.CommittedEvents != tree.CommittedEvents {
				t.Errorf("committed events: ring %d, tree %d", ring.CommittedEvents, tree.CommittedEvents)
			}
		})
	}
}

// TestTreeShardedMatchesSerial asserts sharded execution stays pure
// strategy at large-N: the 64-node fat-tree tree-GVT run commits the same
// digest serially and at four shards.
func TestTreeShardedMatchesSerial(t *testing.T) {
	cfg := treeTestConfig(64, GVTNICTree, netWith(simnet.TopoFatTree))
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Run(cfg, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Digest != sharded.Digest {
		t.Fatalf("sharded digest %016x differs from serial %016x", sharded.Digest, serial.Digest)
	}
	if serial.CommittedEvents != sharded.CommittedEvents {
		t.Fatalf("sharded committed %d, serial %d", sharded.CommittedEvents, serial.CommittedEvents)
	}
}

// TestTreeGVTUnderFaults runs the stress matrix with the tree reduction on
// the fat tree: wire chaos (delays, duplicates, reordering) may stretch a
// reduction round but must never wedge it or let an unsafe value commit —
// every point must pass the invariant oracles and match the fault-free
// digest.
func TestTreeGVTUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-plane sweep")
	}
	rep, err := stress.Sweep(stress.Options{
		Apps:      []string{"phold"},
		Scenarios: []string{"drop", "dup", "chaos"},
		Seeds:     []uint64{1, 2},
		Nodes:     8,
		GVT:       core.GVTNICTree,
		Topology:  simnet.TopoFatTree,
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 {
		for _, p := range rep.Points {
			if !p.Pass {
				t.Errorf("point %s failed: error=%q violations=%v digest=%s baseline=%s",
					p.Name, p.Error, p.Violations, p.Digest, p.Baseline)
			}
		}
	}
}

// TestTreeConvergenceScalesSublinearly pins the headline property at a
// size the race detector can afford: growing the cluster 8x (8 to 64
// nodes) must grow the ring's mean convergence latency by far more than
// the tree's — the ring circulates O(n) hops, the tree reduces in
// O(log n).
func TestTreeConvergenceScalesSublinearly(t *testing.T) {
	conv := func(nodes int, mode GVTMode) vtime.ModelTime {
		res, err := Run(treeTestConfig(nodes, mode, netWith(simnet.TopoFatTree)))
		if err != nil {
			t.Fatal(err)
		}
		if res.GVTConvCount == 0 {
			t.Fatalf("no convergence samples at %d nodes, mode %v", nodes, mode)
		}
		return res.GVTConvAvg()
	}
	ringGrowth := float64(conv(64, GVTNIC)) / float64(conv(8, GVTNIC))
	treeGrowth := float64(conv(64, GVTNICTree)) / float64(conv(8, GVTNICTree))
	if treeGrowth >= ringGrowth {
		t.Fatalf("tree convergence grew %.2fx from 8 to 64 nodes, ring %.2fx; want tree well below ring",
			treeGrowth, ringGrowth)
	}
}
