// Command stress sweeps fault scenario × seed matrices over the cluster
// model and judges every point with the protocol-invariant oracles. It is
// the repro entry point for fault-plane failures: a failing point is shrunk
// to the smallest configuration that still fails and reported as a
// single-line command that re-runs exactly that point.
//
//	stress -apps phold,raid -scenarios drop,dup,chaos -seeds 1,2,3,4 -out stress.json
//
// Scenario and seed sweeps are deterministic: the same matrix produces a
// byte-identical JSON report serially (-j 1), on the parallel pool, and on
// a cache-warm re-run (-cache). -scenarios all includes the hostile
// scenarios (true packet loss, skewed GVT reports), which exist to fail:
// they prove the oracles catch a broken run. -list describes the matrix
// axes and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nicwarp/internal/cliopt"
	"nicwarp/internal/core"
	"nicwarp/internal/fault"
	"nicwarp/internal/runner"
	"nicwarp/internal/stress"
)

func main() {
	var (
		apps      = flag.String("apps", "", "comma-separated workload subset (default: all)")
		scenarios = flag.String("scenarios", "", "comma-separated fault scenarios (default: every non-hostile; \"all\" adds hostile)")
		seeds     = flag.String("seeds", "1,2,3,4", "comma-separated fault seeds")
		nodes     = flag.Int("nodes", 4, "cluster size")
		scale     = flag.Float64("scale", 1.0, "workload scale")
		gvtMode   = cliopt.GVT(flag.CommandLine, core.GVTNIC)
		topo      = cliopt.Topology(flag.CommandLine)
		batch     = flag.Int("batch", 0, "NIC send-batch size for every point (0 or 1 = off)")
		shards    = cliopt.Shards(flag.CommandLine)
		workers   = flag.Int("j", runtime.GOMAXPROCS(0), "parallel points (1 = serial)")
		cacheDir  = flag.String("cache", "", "persist point results under this directory keyed on config digest")
		out       = flag.String("out", "", "write the JSON report to this file")
		verify    = flag.Bool("verify", false, "also run the sequential oracle inside every point")
		shrink    = flag.Bool("shrink", true, "shrink failing points to a minimal repro command")
		list      = flag.Bool("list", false, "list workloads and fault scenarios, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(stress.AppNames(), ", "))
		fmt.Println("scenarios:")
		for _, name := range fault.AllScenarios() {
			fmt.Printf("  %-12s %s\n", name, fault.Describe(name))
		}
		return
	}

	opts := stress.Options{
		Apps:      splitList(*apps),
		Scenarios: scenarioList(*scenarios),
		Nodes:     *nodes,
		Scale:     *scale,
		GVT:       *gvtMode,
		Topology:  *topo,
		Batch:     *batch,
		Shards:    *shards,
		Workers:   *workers,
		Verify:    *verify,
		Shrink:    *shrink,
	}
	var err error
	if opts.Seeds, err = seedList(*seeds); err != nil {
		fatal(err)
	}
	if *cacheDir != "" {
		dc, err := runner.NewDiskCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		fmt.Println("cache:", dc.Dir())
		opts.Cache = dc
	}

	start := time.Now()
	opts.OnProgress = func(p runner.Progress) {
		status := ""
		switch {
		case p.Err != nil:
			status = " FAILED: " + p.Err.Error()
		case p.Cached:
			status = " (cached)"
		}
		fmt.Printf("[%3d/%3d %6.1fs] %s%s\n",
			p.Done, p.Total, time.Since(start).Seconds(), p.Name, status)
	}

	rep, err := stress.Sweep(opts)
	if err != nil {
		fatal(err)
	}
	for _, p := range rep.Points {
		if p.Pass {
			continue
		}
		fmt.Printf("FAIL %s\n", p.Name)
		if p.Error != "" {
			fmt.Printf("     error: %s\n", p.Error)
		}
		for _, v := range p.Violations {
			fmt.Printf("     violation: %s\n", v)
		}
		if p.Baseline != "" && p.Digest != p.Baseline {
			fmt.Printf("     digest %s != fault-free %s\n", p.Digest, p.Baseline)
		}
		if p.Repro != "" {
			fmt.Printf("     repro: %s\n", p.Repro)
		}
	}
	if *out != "" {
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
	}
	fmt.Printf("%d points, %d failures\n", len(rep.Points), rep.Failures)
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// scenarioList expands the -scenarios flag; "all" selects every registered
// scenario including the hostile ones.
func scenarioList(s string) []string {
	if strings.TrimSpace(s) == "all" {
		return fault.AllScenarios()
	}
	return splitList(s)
}

// seedList parses the -seeds flag.
func seedList(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range splitList(s) {
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stress: bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stress:", err)
	os.Exit(1)
}
