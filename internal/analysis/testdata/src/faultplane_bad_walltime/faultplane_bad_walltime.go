// Package faultplane_bad_walltime is the fault plane written wrong: seeds
// and fault fates drawn from ambient entropy instead of the plan seed. Any
// of these would make a FaultPlan unreplayable — the exact property the
// stress harness's shrink-to-repro depends on.
package faultplane_bad_walltime

import (
	mrand "math/rand" // want `import of math/rand in deterministic package faultplane_bad_walltime`
	"time"
)

// seedFromClock is the classic way a "seeded" fault plane silently loses
// replayability.
func seedFromClock() int64 {
	return time.Now().UnixNano() // want `wall-clock access time\.Now`
}

// drop decides a packet's fate from process-global randomness: two runs of
// the same plan diverge.
func drop(prob float64) bool {
	return mrand.Float64() < prob
}

// retxPause sleeps real time instead of scheduling model time.
func retxPause() {
	time.Sleep(20 * time.Microsecond) // want `wall-clock access time\.Sleep`
}
