// Package clockmix_bad exercises the clockmix rule: conversions between
// the two clock types, direct and laundered through plain integers.
package clockmix_bad

import "nicwarp/internal/vtime"

func direct(v vtime.VTime) vtime.ModelTime {
	return vtime.ModelTime(v) // want `conversion of vtime\.VTime to vtime\.ModelTime`
}

func reverse(m vtime.ModelTime) vtime.VTime {
	return vtime.VTime(m) // want `conversion of vtime\.ModelTime to vtime\.VTime`
}

// laundered hides the cross-clock cast behind an int64 conversion.
func laundered(m vtime.ModelTime) vtime.VTime {
	return vtime.VTime(int64(m)) // want `conversion of vtime\.ModelTime to vtime\.VTime`
}

// doubleLaundered stacks two numeric conversions; both are peeled.
func doubleLaundered(v vtime.VTime) vtime.ModelTime {
	return vtime.ModelTime(uint64(int64(v))) // want `conversion of vtime\.VTime to vtime\.ModelTime`
}
