package firmware

import (
	"fmt"

	"nicwarp/internal/nic"
	"nicwarp/internal/proto"
	"nicwarp/internal/stats"
	"nicwarp/internal/vtime"
)

// DefaultTreeArity is the reduction-tree branching factor used when the
// caller does not derive one from the fabric: eight matches the paper's
// switch radix, so an 8-node cluster reduces in a single star step and a
// 1024-node fat-tree reduces in ceil(log8 1024) ≈ 4 levels.
const DefaultTreeArity = 8

// TreeGVTFirmware is the tree-shaped variant of GVTFirmware: instead of
// circulating one Mattern token around an O(n) ring, the nodes form a
// static k-ary tree over their ids (parent of i is (i-1)/k, root 0) and
// each NIC folds its whole subtree's white balance and min(LVT, red-send
// min) into a single KindGVTReduce packet toward its parent — the
// NIC-based collective-reduction structure of Yu/Buntinas/Panda applied
// to GVT. The committed value travels back down the same tree as
// KindGVTBroadcast relays, so a computation converges in O(log n) link
// hops with the host involved exactly once per node (the same
// shared-window piggyback/doorbell handshake the ring variant uses; the
// host half is gvt.NewNICTreeGVT).
//
// One computation round at a node:
//
//  1. a start token (KindGVTToken) arrives from the parent — or, at the
//     root, the host stages an initiation in the shared window. The NIC
//     immediately relays the start to its children (pure NIC work; this
//     is what makes the fan-out parallel) and notifies its host;
//  2. the host's (T, Tmin, V) arrive by piggyback or doorbell and are
//     folded into the node's partial sum, exactly as in the ring;
//  3. each child's KindGVTReduce arrives and is folded in;
//  4. with the host and every child accounted, the node forwards one
//     reduce packet up — or, at the root, decides: balance zero means the
//     cut is consistent and the min broadcasts down; a nonzero balance
//     means messages are still in transit, so the root re-stages its own
//     handshake and starts round r+1 down the tree, carrying the
//     accumulated balance and min exactly like a ring re-circulation
//     (the bounded re-reduce: each round only waits for the in-transit
//     messages of the previous cut to land).
//
// Reduce and start packets are NIC-injected control traffic: they bypass
// the rx credit windows (see nic.gated) and, carrying Seq 0, are exempt
// from random wire faults — the fault plane only delays them — so a
// drop/reorder scenario stretches a computation but cannot wedge it.
type TreeGVTFirmware struct {
	arity int

	// Transmit-side colour accounting, identical to GVTFirmware.
	epoch       uint32
	sentOld     int64 // transmitted with stamp below epoch (folded)
	sentByStamp map[uint32]int64
	reportedOld int64 // white sends already folded into the current round

	// Per-round reduction state. A node is "collecting" from the moment
	// it learns of a round (start token, or staged initiation at the
	// root) until it has folded its host's variables and every child's
	// partial sum.
	collecting   bool
	round        int32
	origin       int32
	compEpoch    uint64
	hostFolded   bool
	childrenSeen int
	accCount     int64
	accMin       vtime.VTime

	// Statistics.
	TokensStarted   stats.Counter // computations initiated (root only)
	StartsForwarded stats.Counter // start tokens relayed toward children
	Reduces         stats.Counter // partial reductions sent toward the parent
	Broadcasts      stats.Counter // value announcements made at the root
	RoundsAtRoot    stats.Counter // completed reduction rounds at the root
	ValueReports    stats.Counter // GVT values reported to the local host
}

// NewTreeGVT returns the tree-reduction GVT firmware with the given
// branching factor (DefaultTreeArity if arity < 2).
func NewTreeGVT(arity int) *TreeGVTFirmware {
	if arity < 2 {
		arity = DefaultTreeArity
	}
	return &TreeGVTFirmware{
		arity:       arity,
		sentByStamp: make(map[uint32]int64),
		accMin:      vtime.Infinity,
	}
}

// Name implements nic.Firmware.
func (f *TreeGVTFirmware) Name() string { return "nic-tree-gvt" }

// Arity returns the tree branching factor.
func (f *TreeGVTFirmware) Arity() int { return f.arity }

// numChildren returns how many tree children this node has.
func (f *TreeGVTFirmware) numChildren(api nic.API) int {
	first := f.arity*api.Node() + 1
	if first >= api.NumNodes() {
		return 0
	}
	last := first + f.arity - 1
	if last > api.NumNodes()-1 {
		last = api.NumNodes() - 1
	}
	return last - first + 1
}

// countSend accounts one transmitted event-like packet by its stamp.
func (f *TreeGVTFirmware) countSend(stamp uint32) {
	if stamp < f.epoch {
		f.sentOld++
	} else {
		f.sentByStamp[stamp]++
	}
}

// join advances to computation c, folding now-white transmit counts.
func (f *TreeGVTFirmware) join(c uint32) {
	if c <= f.epoch {
		return
	}
	f.epoch = c
	//nicwarp:ordered commutative fold: sums counters and deletes folded keys
	for s, n := range f.sentByStamp {
		if s < c {
			f.sentOld += n
			delete(f.sentByStamp, s)
		}
	}
	f.reportedOld = 0
}

// takeSentDelta returns white transmits not yet folded into the round.
func (f *TreeGVTFirmware) takeSentDelta() int64 {
	d := f.sentOld - f.reportedOld
	f.reportedOld = f.sentOld
	return d
}

// OnHostSend implements nic.Firmware: count white transmits and intercept
// piggybacked host handshake values, exactly as the ring firmware does.
func (f *TreeGVTFirmware) OnHostSend(pkt *proto.Packet, api nic.API) nic.Verdict {
	api.Charge(CyclesHeaderCheck)
	if pkt.IsEventLike() {
		f.countSend(pkt.ColorEpoch)
	}
	if pkt.PiggyGVTValid {
		api.Charge(CyclesPiggyExtract)
		w := api.Shared()
		w.HostT = pkt.PiggyT
		w.HostTMin = pkt.PiggyTMin
		w.HostV = pkt.PiggyV
		w.ReceivedHostVariables = true
		pkt.PiggyGVTValid = false
		f.advance(api)
	}
	return nic.VerdictForward
}

// OnWireReceive implements nic.Firmware: absorb start tokens, child
// reductions and value broadcasts.
func (f *TreeGVTFirmware) OnWireReceive(pkt *proto.Packet, api nic.API) nic.Verdict {
	api.Charge(CyclesHeaderCheck)
	w := api.Shared()
	switch pkt.Kind {
	case proto.KindGVTToken:
		// A start token from the parent: relay it down, then run the
		// local host handshake.
		if w.GVTTokenPending {
			panic(fmt.Sprintf("firmware: node %d received a start token while one is pending", api.Node()))
		}
		api.Charge(CyclesTokenFold + CyclesNotify)
		api.Stats().TokensSeen.Inc()
		f.join(uint32(pkt.TokenEpoch))
		f.beginRound(api, pkt.TokenRound, pkt.TokenOrigin, pkt.TokenEpoch)
		w.GVTTokenPending = true
		w.ControlMessagePending = true
		w.ReceivedHostVariables = false
		w.TokenIsInitiation = false
		w.TokenRound = pkt.TokenRound
		w.TokenCount = pkt.TokenCount
		w.TokenMin = pkt.TokenMin
		w.TokenEpoch = pkt.TokenEpoch
		w.TokenOrigin = pkt.TokenOrigin
		api.NotifyHost(nic.NotifyGVTControl)
		return nic.VerdictConsume
	case proto.KindGVTReduce:
		// One child subtree's partial sum.
		if !f.collecting || pkt.TokenRound != f.round || pkt.TokenEpoch != f.compEpoch {
			panic(fmt.Sprintf("firmware: node %d got stray reduce %s during round %d epoch %d",
				api.Node(), pkt, f.round, f.compEpoch))
		}
		api.Charge(CyclesTokenFold)
		api.Stats().TokensSeen.Inc()
		f.accCount += pkt.TokenCount
		f.accMin = vtime.MinV(f.accMin, pkt.TokenMin)
		f.childrenSeen++
		f.maybeComplete(api)
		return nic.VerdictConsume
	case proto.KindGVTBroadcast:
		// The committed value coming down: relay to the subtree, then
		// report to the local host.
		api.Charge(CyclesNotify)
		f.relayValue(api, pkt.TokenGVT, pkt.TokenEpoch)
		f.ValueReports.Inc()
		w.LatestGVT = pkt.TokenGVT
		api.NotifyHost(nic.NotifyGVTValue)
		return nic.VerdictConsume
	default:
		return nic.VerdictForward
	}
}

// OnDoorbell implements nic.Firmware.
func (f *TreeGVTFirmware) OnDoorbell(api nic.API) {
	api.Charge(CyclesHeaderCheck)
	f.advance(api)
}

// beginRound opens the collection state for one reduction round and relays
// the start token to every child. At a non-root node this runs at start
// receipt (children may report before the local host does); at the root it
// runs when the host's initiation — or a re-reduce restage — completes its
// handshake.
func (f *TreeGVTFirmware) beginRound(api nic.API, round, origin int32, epoch uint64) {
	f.collecting = true
	f.round = round
	f.origin = origin
	f.compEpoch = epoch
	f.hostFolded = false
	f.childrenSeen = 0
	f.accCount = 0
	f.accMin = vtime.Infinity

	first := f.arity*api.Node() + 1
	for c := first; c < first+f.arity && c < api.NumNodes(); c++ {
		api.Charge(CyclesTokenBuild)
		f.StartsForwarded.Inc()
		api.Inject(&proto.Packet{
			Kind:        proto.KindGVTToken,
			SrcNode:     int32(api.Node()),
			DstNode:     int32(c),
			TokenRound:  round,
			TokenCount:  0,
			TokenMin:    vtime.Infinity,
			TokenOrigin: origin,
			TokenEpoch:  epoch,
		})
	}
}

// advance folds the host's handshake values into the local partial sum once
// both the staged round and the host variables are on the NIC.
func (f *TreeGVTFirmware) advance(api nic.API) {
	w := api.Shared()
	if !w.GVTTokenPending || !w.ReceivedHostVariables {
		return
	}
	api.Charge(CyclesTokenFold)
	f.join(uint32(w.TokenEpoch)) // no-op except at the initiating root

	count := w.TokenCount + f.takeSentDelta() - w.HostV
	min := vtime.MinV(w.TokenMin, vtime.MinV(w.HostT, w.HostTMin))
	min = vtime.MinV(min, queuedSendMin(api))
	round := w.TokenRound
	origin := w.TokenOrigin
	epoch := w.TokenEpoch
	initiation := w.TokenIsInitiation

	w.GVTTokenPending = false
	w.ControlMessagePending = false
	w.ReceivedHostVariables = false
	w.TokenIsInitiation = false

	if !f.collecting {
		// Only the root reaches here: a host-staged initiation or a
		// re-reduce restage. Non-root rounds always open at start receipt.
		if origin != int32(api.Node()) {
			panic(fmt.Sprintf("firmware: node %d advanced a round it never opened (origin %d)",
				api.Node(), origin))
		}
		if initiation {
			f.TokensStarted.Inc()
		}
		f.beginRound(api, round, origin, epoch)
	}
	f.accCount += count
	f.accMin = vtime.MinV(f.accMin, min)
	f.hostFolded = true
	f.maybeComplete(api)
}

// maybeComplete closes the round once the host and every child subtree have
// been folded: forward the partial sum up, or decide at the root.
func (f *TreeGVTFirmware) maybeComplete(api nic.API) {
	if !f.collecting || !f.hostFolded || f.childrenSeen < f.numChildren(api) {
		return
	}
	f.collecting = false
	count := f.accCount
	min := f.accMin
	if f.origin == int32(api.Node()) {
		// Root: the sum covers the whole tree.
		f.RoundsAtRoot.Inc()
		if count == 0 {
			f.announce(api, min, f.compEpoch)
			return
		}
		// Messages were in transit across the cut: restage the host
		// handshake and reduce again, carrying the balance and min
		// forward exactly like a ring re-circulation.
		f.requeue(api, f.round+1, count, min, f.origin, f.compEpoch)
		return
	}
	api.Charge(CyclesTokenBuild)
	f.Reduces.Inc()
	parent := (api.Node() - 1) / f.arity
	api.Inject(&proto.Packet{
		Kind:        proto.KindGVTReduce,
		SrcNode:     int32(api.Node()),
		DstNode:     int32(parent),
		TokenRound:  f.round,
		TokenCount:  count,
		TokenMin:    min,
		TokenOrigin: f.origin,
		TokenEpoch:  f.compEpoch,
	})
}

// requeue re-stages the round locally at the root and asks the host for
// fresh values; the next advance re-opens the round down the tree.
func (f *TreeGVTFirmware) requeue(api nic.API, round int32, count int64, min vtime.VTime, origin int32, epoch uint64) {
	w := api.Shared()
	w.GVTTokenPending = true
	w.ControlMessagePending = true
	w.ReceivedHostVariables = false
	w.TokenIsInitiation = false
	w.TokenRound = round
	w.TokenCount = count
	w.TokenMin = min
	w.TokenOrigin = origin
	w.TokenEpoch = epoch
	api.Charge(CyclesNotify)
	api.NotifyHost(nic.NotifyGVTControl)
}

// relayValue forwards a committed GVT value to every child.
func (f *TreeGVTFirmware) relayValue(api nic.API, g vtime.VTime, epoch uint64) {
	first := f.arity*api.Node() + 1
	for c := first; c < first+f.arity && c < api.NumNodes(); c++ {
		api.Charge(CyclesTokenBuild)
		api.Inject(&proto.Packet{
			Kind:        proto.KindGVTBroadcast,
			SrcNode:     int32(api.Node()),
			DstNode:     int32(c),
			TokenGVT:    g,
			TokenOrigin: int32(api.Node()),
			TokenEpoch:  epoch,
		})
	}
}

// announce reports the newly computed GVT at the root: down the tree to
// every subtree, and to the local host.
func (f *TreeGVTFirmware) announce(api nic.API, g vtime.VTime, epoch uint64) {
	api.Charge(CyclesNotify)
	f.Broadcasts.Inc()
	f.relayValue(api, g, epoch)
	w := api.Shared()
	w.LatestGVT = g
	f.ValueReports.Inc()
	api.NotifyHost(nic.NotifyGVTValue)
}
