// Command nicwarp-vet is the multichecker driver for the repo's
// determinism analyzers (see internal/analysis and DESIGN.md "Determinism
// invariants"). It runs in two modes:
//
// Standalone, over package patterns — the form CI uses:
//
//	go run ./cmd/nicwarp-vet ./...
//	go run ./cmd/nicwarp-vet -list
//	go run ./cmd/nicwarp-vet -walltime.allow='nicwarp/cmd/...' ./internal/...
//
// As a go vet tool, speaking the unitchecker .cfg protocol:
//
//	go vet -vettool=$(which nicwarp-vet) ./...
//
// Standalone mode loads and type-checks packages itself (no go command, no
// network; see internal/analysis/framework.Loader), so it works in the
// hermetic CI container. Exit status is nonzero iff any analyzer reported a
// diagnostic.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nicwarp/internal/analysis"
	"nicwarp/internal/analysis/framework"
)

func main() {
	analyzers := analysis.All()

	// go vet probes its tool with -V=full for cache fingerprinting; the go
	// command requires the reply to name the tool and carry a buildID, so
	// hash the executable the way x/tools' unitchecker does.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			printVersion()
			return
		}
	}

	list := flag.Bool("list", false, "list registered analyzers and exit")
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	// go vet also probes with -flags, expecting a JSON description of the
	// tool's flags so it can decide which command-line flags to forward.
	for _, arg := range os.Args[1:] {
		if arg == "-flags" || arg == "--flags" {
			printFlagsJSON()
			return
		}
	}

	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, analyzers))
}

// printVersion answers the go command's -V=full probe. The expected shape
// is "<name> version <words...> buildID=<id>", where the ID fingerprints
// this binary for go's action cache.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(os.Args[0]), string(sum[:]))
}

// printFlagsJSON answers the go command's -flags probe with the schema
// cmd/go expects from a vet tool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runStandalone loads the requested packages and applies every analyzer.
func runStandalone(patterns []string, analyzers []*framework.Analyzer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}
	modRoot, err := framework.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}
	loader, err := framework.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}

	type finding struct {
		pos  string
		line int
		col  int
		msg  string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := framework.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
				return 1
			}
			for _, d := range diags {
				p := loader.Fset.Position(d.Pos)
				findings = append(findings, finding{
					pos:  p.Filename,
					line: p.Line,
					col:  p.Column,
					msg:  fmt.Sprintf("%s (%s)", d.Message, a.Name),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		if findings[i].line != findings[j].line {
			return findings[i].line < findings[j].line
		}
		return findings[i].col < findings[j].col
	})
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", f.pos, f.line, f.col, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "nicwarp-vet: %d finding(s) across %d package(s)\n",
			len(findings), len(pkgs))
		return 1
	}
	return 0
}
