// Package hostmodel models one cluster node's host processor and the
// software costs the paper's measurements include: the WARPED kernel's
// per-event work, the MPICH/BIP protocol stack, interrupt handling, and the
// extra work of generating GVT control messages in the host-only
// implementation.
//
// Costs live in a CostTable so experiments and ablation benchmarks can vary
// them; the defaults are calibrated so the modeled execution times land in
// the same ranges as the paper's figures (tens to hundreds of modeled
// seconds for the paper's workloads).
package hostmodel

import (
	"fmt"

	"nicwarp/internal/des"
	"nicwarp/internal/stats"
	"nicwarp/internal/vtime"
)

// CostTable enumerates host-side service times. All values are model-time
// durations charged on the host CPU resource.
type CostTable struct {
	// EventGrain is the application computation per processed event. Time
	// Warp workloads in the paper are fine-grained; tens of microseconds on
	// a 550 MHz Pentium III.
	EventGrain vtime.ModelTime
	// KernelOverhead is the WARPED kernel cost per processed event: queue
	// operations, state saving, scheduling.
	KernelOverhead vtime.ModelTime
	// SendOverhead is the host protocol-stack cost to post one outgoing
	// message (MPICH + BIP, descriptor setup).
	SendOverhead vtime.ModelTime
	// RecvOverhead is the host protocol-stack cost to absorb one incoming
	// message into the kernel.
	RecvOverhead vtime.ModelTime
	// InterruptOverhead is the per-inbound-DMA interrupt/notification cost.
	InterruptOverhead vtime.ModelTime
	// RollbackBase is the fixed cost of a rollback (state restore).
	RollbackBase vtime.ModelTime
	// RollbackPerEvent is the additional rollback cost per unprocessed
	// event and per generated anti-message.
	RollbackPerEvent vtime.ModelTime
	// GVTHostCompute is the host-side Mattern bookkeeping per token visit
	// (fold counters, compute minima).
	GVTHostCompute vtime.ModelTime
	// GVTMsgBuild is the extra cost of allocating and building a dedicated
	// GVT control message in the host-only implementation ("these messages
	// take up resources (CPU and memory)").
	GVTMsgBuild vtime.ModelTime
	// SharedWrite is the host cost of writing a word into the host/NIC
	// shared window (piggyback values, colour changes, drop-buffer reads).
	SharedWrite vtime.ModelTime
	// FossilPerEvent is the garbage-collection cost per reclaimed event.
	FossilPerEvent vtime.ModelTime
	// FossilPerObject is the per-local-object scan cost of one fossil
	// collection pass (2002-era WARPED walks every object's queues).
	FossilPerObject vtime.ModelTime
	// GVTScanPerObject is the per-local-object cost of a host Mattern token
	// visit: WARPED recomputes LVT by examining the scheduler state. The
	// NIC implementation avoids it by keeping the LVT mirror incrementally
	// up to date on the NIC (paper Figure 2).
	GVTScanPerObject vtime.ModelTime
	// HistPenaltyPer1K is the extra per-event memory-system cost for every
	// thousand retained (uncollected) history entries: long state and event
	// queues blow the caches, which is why the paper's curves rise when GVT
	// runs infrequently.
	HistPenaltyPer1K vtime.ModelTime
	// HistPenaltyCap bounds the memory penalty per event.
	HistPenaltyCap vtime.ModelTime
}

// HistPenalty returns the per-event memory penalty for a given retained
// history size.
func (c *CostTable) HistPenalty(hist int) vtime.ModelTime {
	p := vtime.ModelTime(hist) * c.HistPenaltyPer1K / 1000
	return vtime.MinM(p, c.HistPenaltyCap)
}

// DefaultCostTable returns the calibrated cost model for a 550 MHz PIII
// running RedHat 6.2 with MPICH over BIP, per the paper's testbed.
func DefaultCostTable() CostTable {
	return CostTable{
		EventGrain:        14 * vtime.Microsecond,
		KernelOverhead:    8 * vtime.Microsecond,
		SendOverhead:      9 * vtime.Microsecond,
		RecvOverhead:      9 * vtime.Microsecond,
		InterruptOverhead: 4 * vtime.Microsecond,
		RollbackBase:      20 * vtime.Microsecond,
		RollbackPerEvent:  6 * vtime.Microsecond,
		GVTHostCompute:    5 * vtime.Microsecond,
		GVTMsgBuild:       7 * vtime.Microsecond,
		SharedWrite:       1 * vtime.Microsecond,
		FossilPerEvent:    400 * vtime.Nanosecond,
		FossilPerObject:   600 * vtime.Nanosecond,
		GVTScanPerObject:  250 * vtime.Nanosecond,
		HistPenaltyPer1K:  4 * vtime.Microsecond,
		HistPenaltyCap:    30 * vtime.Microsecond,
	}
}

// Validate checks that no cost is negative.
func (c *CostTable) Validate() error {
	costs := []struct {
		name string
		v    vtime.ModelTime
	}{
		{"EventGrain", c.EventGrain},
		{"KernelOverhead", c.KernelOverhead},
		{"SendOverhead", c.SendOverhead},
		{"RecvOverhead", c.RecvOverhead},
		{"InterruptOverhead", c.InterruptOverhead},
		{"RollbackBase", c.RollbackBase},
		{"RollbackPerEvent", c.RollbackPerEvent},
		{"GVTHostCompute", c.GVTHostCompute},
		{"GVTMsgBuild", c.GVTMsgBuild},
		{"SharedWrite", c.SharedWrite},
		{"FossilPerEvent", c.FossilPerEvent},
		{"FossilPerObject", c.FossilPerObject},
		{"GVTScanPerObject", c.GVTScanPerObject},
		{"HistPenaltyPer1K", c.HistPenaltyPer1K},
		{"HistPenaltyCap", c.HistPenaltyCap},
	}
	for _, x := range costs {
		if x.v < 0 {
			return fmt.Errorf("hostmodel: negative cost %s = %v", x.name, x.v)
		}
	}
	return nil
}

// CPU is one node's host processor: a FIFO resource plus the cost table and
// accounting split by work category, so experiments can report where host
// cycles went (the paper's explanation of Figure 4 is exactly such a
// breakdown).
type CPU struct {
	Costs CostTable

	res *des.Resource

	// Busy time by category.
	EventWork    stats.BusyTime // application + kernel event processing
	CommWork     stats.BusyTime // protocol stack, interrupts
	GVTWork      stats.BusyTime // GVT bookkeeping and control messages
	RollbackWork stats.BusyTime // rollback and cancellation
}

// Category labels host work for the accounting breakdown.
type Category int

// Work categories.
const (
	CatEvent Category = iota
	CatComm
	CatGVT
	CatRollback
)

// NewCPU builds the host CPU for a node.
func NewCPU(eng *des.Engine, node int, costs CostTable) *CPU {
	if err := costs.Validate(); err != nil {
		panic(err)
	}
	return &CPU{
		Costs: costs,
		res:   des.NewResource(eng, fmt.Sprintf("host-cpu-%d", node)),
	}
}

// Do charges cost on the CPU under the given category and runs done at
// completion.
func (c *CPU) Do(cat Category, cost vtime.ModelTime, done func()) {
	c.charge(cat, cost)
	c.res.Submit(cost, done)
}

// DoArg is the closure-free Do: at completion fn(arg) runs. fn should be a
// top-level function and arg a threaded receiver, so steady-state callers
// allocate nothing per job.
func (c *CPU) DoArg(cat Category, cost vtime.ModelTime, fn func(interface{}), arg interface{}) {
	c.charge(cat, cost)
	c.res.SubmitArg(cost, fn, arg)
}

func (c *CPU) charge(cat Category, cost vtime.ModelTime) {
	switch cat {
	case CatEvent:
		c.EventWork.AddInterval(cost)
	case CatComm:
		c.CommWork.AddInterval(cost)
	case CatGVT:
		c.GVTWork.AddInterval(cost)
	case CatRollback:
		c.RollbackWork.AddInterval(cost)
	default:
		panic(fmt.Sprintf("hostmodel: unknown category %d", cat))
	}
}

// Idle reports whether the CPU has no queued work.
func (c *CPU) Idle() bool { return c.res.Idle() }

// Utilization returns total CPU utilization.
func (c *CPU) Utilization() float64 { return c.res.Utilization() }

// UtilizationAt is Utilization against an explicit end-of-run clock, for
// sharded runs where a member engine's clock stops at its last local event.
func (c *CPU) UtilizationAt(end vtime.ModelTime) float64 { return c.res.UtilizationAt(end) }

// Jobs returns the number of completed CPU jobs.
func (c *CPU) Jobs() int64 { return c.res.Jobs.Value() }
