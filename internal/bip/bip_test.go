package bip

import (
	"testing"

	"nicwarp/internal/proto"
)

func pkt(src, dst int32, seq uint64) *proto.Packet {
	return &proto.Packet{Kind: proto.KindEvent, SrcNode: src, DstNode: dst, Seq: seq}
}

func TestStampAssignsPerDestinationSequences(t *testing.T) {
	e := New(0)
	a := pkt(0, 1, 0)
	b := pkt(0, 1, 0)
	c := pkt(0, 2, 0)
	e.Stamp(a)
	e.Stamp(b)
	e.Stamp(c)
	if a.Seq != 1 || b.Seq != 2 {
		t.Fatalf("seqs to node 1: %d, %d", a.Seq, b.Seq)
	}
	if c.Seq != 1 {
		t.Fatalf("seq to node 2: %d (independent stream expected)", c.Seq)
	}
	if e.Stamped.Value() != 3 {
		t.Fatalf("stamped = %d", e.Stamped.Value())
	}
}

func TestStampWrongNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0).Stamp(pkt(3, 1, 0))
}

func TestAcceptInOrder(t *testing.T) {
	e := New(1)
	for seq := uint64(1); seq <= 5; seq++ {
		if missing := e.Accept(pkt(0, 1, seq)); missing != 0 {
			t.Fatalf("seq %d: missing = %d", seq, missing)
		}
	}
	if e.GapsDetected.Value() != 0 {
		t.Fatal("phantom gap")
	}
}

func TestAcceptDetectsGap(t *testing.T) {
	e := New(1)
	e.Accept(pkt(0, 1, 1))
	// Seqs 2,3,4 were dropped by the NIC.
	missing := e.Accept(pkt(0, 1, 5))
	if missing != 3 {
		t.Fatalf("missing = %d, want 3", missing)
	}
	if e.GapsDetected.Value() != 1 || e.MissingSeqs.Value() != 3 {
		t.Fatalf("gaps=%d missing=%d", e.GapsDetected.Value(), e.MissingSeqs.Value())
	}
	// Stream continues normally afterwards.
	if e.Accept(pkt(0, 1, 6)) != 0 {
		t.Fatal("stream did not resume")
	}
}

func TestAcceptPerSourceStreams(t *testing.T) {
	e := New(2)
	if e.Accept(pkt(0, 2, 1)) != 0 || e.Accept(pkt(1, 2, 1)) != 0 {
		t.Fatal("independent source streams")
	}
}

func TestAcceptSeqZeroSkipsChecking(t *testing.T) {
	e := New(1)
	e.Accept(pkt(0, 1, 1))
	tok := &proto.Packet{Kind: proto.KindGVTToken, SrcNode: 0, DstNode: 1, Seq: 0}
	if e.Accept(tok) != 0 {
		t.Fatal("NIC-originated packet must bypass sequencing")
	}
	if e.Accept(pkt(0, 1, 2)) != 0 {
		t.Fatal("stream disturbed by seq-0 packet")
	}
}

func TestAcceptDuplicatePanics(t *testing.T) {
	e := New(1)
	e.Accept(pkt(0, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Accept(pkt(0, 1, 1))
}

// TestTolerantClassification drives one tolerant-mode endpoint through
// arrival sequences that mix deliberate NIC drops (permanent holes),
// retransmissions (late fills) and fabric duplicates, and checks every
// per-packet verdict plus the final hole accounting. This is the
// classification layer the fault plane's duplicate-drop scenarios and the
// bip-gap-accounting invariant lean on.
func TestTolerantClassification(t *testing.T) {
	type step struct {
		seq         uint64
		wantVerdict Verdict
		wantMissing int // newly detected missing seqs for this arrival
	}
	cases := []struct {
		name            string
		steps           []step
		wantOutstanding int   // open holes from src 0 at the end
		wantLateFilled  int64 // LateFilled counter at the end
		wantDuplicates  int64 // Duplicates counter at the end
	}{
		{
			name: "in-order stream stays clean",
			steps: []step{
				{1, VerdictFresh, 0}, {2, VerdictFresh, 0}, {3, VerdictFresh, 0},
			},
		},
		{
			name: "single drop leaves a permanent hole",
			steps: []step{
				{1, VerdictFresh, 0}, {3, VerdictFresh, 1},
			},
			wantOutstanding: 1,
		},
		{
			name: "retransmission fills its hole exactly once",
			steps: []step{
				{1, VerdictFresh, 0},
				{3, VerdictFresh, 1},     // gap: 2 missing
				{2, VerdictLate, 0},      // retransmit fills it
				{2, VerdictDuplicate, 0}, // second copy is a duplicate
			},
			wantLateFilled: 1,
			wantDuplicates: 1,
		},
		{
			name: "duplicate of a delivered packet never reopens the stream",
			steps: []step{
				{1, VerdictFresh, 0}, {2, VerdictFresh, 0},
				{1, VerdictDuplicate, 0}, {2, VerdictDuplicate, 0},
				{3, VerdictFresh, 0},
			},
			wantDuplicates: 2,
		},
		{
			name: "duplicate inside an open gap is not a fill",
			steps: []step{
				{2, VerdictFresh, 1},     // gap: 1 missing
				{2, VerdictDuplicate, 0}, // dup of the delivered packet, hole stays
			},
			wantOutstanding: 1,
			wantDuplicates:  1,
		},
		{
			name: "reordered burst resolves to no holes",
			steps: []step{
				{1, VerdictFresh, 0},
				{4, VerdictFresh, 2}, // gap: 2,3 missing
				{3, VerdictLate, 0},
				{2, VerdictLate, 0},
				{5, VerdictFresh, 0},
			},
			wantLateFilled: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(1)
			e.SetTolerant(true)
			for i, s := range tc.steps {
				v, missing := e.AcceptV(pkt(0, 1, s.seq))
				if v != s.wantVerdict || missing != s.wantMissing {
					t.Fatalf("step %d (seq %d): got (%v, %d), want (%v, %d)",
						i, s.seq, v, missing, s.wantVerdict, s.wantMissing)
				}
			}
			if got := e.MissingFrom(0); got != tc.wantOutstanding {
				t.Errorf("MissingFrom(0) = %d, want %d", got, tc.wantOutstanding)
			}
			if got := e.OutstandingMissing(); got != tc.wantOutstanding {
				t.Errorf("OutstandingMissing() = %d, want %d", got, tc.wantOutstanding)
			}
			if got := e.LateFilled.Value(); got != tc.wantLateFilled {
				t.Errorf("LateFilled = %d, want %d", got, tc.wantLateFilled)
			}
			if got := e.Duplicates.Value(); got != tc.wantDuplicates {
				t.Errorf("Duplicates = %d, want %d", got, tc.wantDuplicates)
			}
		})
	}
}

// TestTolerantHolesArePerSource checks hole bookkeeping does not bleed
// between source streams.
func TestTolerantHolesArePerSource(t *testing.T) {
	e := New(2)
	e.SetTolerant(true)
	e.AcceptV(pkt(0, 2, 2)) // src 0: hole at 1
	e.AcceptV(pkt(1, 2, 3)) // src 1: holes at 1,2
	if e.MissingFrom(0) != 1 || e.MissingFrom(1) != 2 {
		t.Fatalf("per-source holes = %d,%d, want 1,2", e.MissingFrom(0), e.MissingFrom(1))
	}
	if e.OutstandingMissing() != 3 {
		t.Fatalf("OutstandingMissing = %d, want 3", e.OutstandingMissing())
	}
	// src 1's seq-1 fill must not touch src 0's hole at the same number.
	if v, _ := e.AcceptV(pkt(1, 2, 1)); v != VerdictLate {
		t.Fatalf("src 1 retransmit verdict = %v, want late", v)
	}
	if e.MissingFrom(0) != 1 || e.MissingFrom(1) != 1 {
		t.Fatalf("after fill: per-source holes = %d,%d, want 1,1", e.MissingFrom(0), e.MissingFrom(1))
	}
}
