// Package seedflow_dep is the dependency half of the cross-package taint
// fixture: NowTicks' entropy derivation is exported as a Tainted fact.
package seedflow_dep

import "time"

// NowTicks returns wall-clock-derived ticks; the fact layer records it as
// tainted so importers see through the call.
func NowTicks() uint64 {
	return uint64(time.Now().UnixNano())
}

// Double is pure: no fact, no taint.
func Double(v uint64) uint64 {
	return v * 2
}
