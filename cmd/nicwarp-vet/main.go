// Command nicwarp-vet is the multichecker driver for the repo's
// determinism analyzers (see internal/analysis and DESIGN.md "Determinism
// invariants"). It runs in two modes:
//
// Standalone, over package patterns — the form CI uses:
//
//	go run ./cmd/nicwarp-vet ./...
//	go run ./cmd/nicwarp-vet -list
//	go run ./cmd/nicwarp-vet -only=poolown,hotalloc ./internal/timewarp
//	go run ./cmd/nicwarp-vet -sarif=results/vet.sarif -summary=- ./...
//	go run ./cmd/nicwarp-vet -fix ./...
//	go run ./cmd/nicwarp-vet -writebaseline ./...
//
// As a go vet tool, speaking the unitchecker .cfg protocol (cross-package
// facts ride in the .vetx files the protocol exchanges):
//
//	go vet -vettool=$(which nicwarp-vet) ./...
//
// Standalone mode loads and type-checks packages itself (no go command, no
// network; see internal/analysis/framework.Loader), walks the module in
// dependency order so exported facts (ownership, allocation purity,
// entropy taint) exist before their importers are analyzed, and folds the
// findings through the suppression baseline (results/VET_baseline.json).
// Exit status is nonzero iff any finding survives the baseline — or, with
// -ratchet, if the baseline holds stale entries that must be removed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nicwarp/internal/analysis"
	"nicwarp/internal/analysis/framework"
)

// defaultBaseline is the committed suppression baseline, resolved relative
// to the module root.
const defaultBaseline = "results/VET_baseline.json"

func main() {
	analyzers := analysis.All()

	// go vet probes its tool with -V=full for cache fingerprinting; the go
	// command requires the reply to name the tool and carry a buildID, so
	// hash the executable the way x/tools' unitchecker does.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			printVersion()
			return
		}
	}

	var (
		list          = flag.Bool("list", false, "list registered analyzers with their docs and flags, then exit")
		only          = flag.String("only", "", "comma-separated analyzer names to run (default: all; unknown names are an error)")
		baselinePath  = flag.String("baseline", defaultBaseline, "suppression baseline file, relative to the module root (missing file = empty baseline; empty string disables)")
		writeBaseline = flag.Bool("writebaseline", false, "regenerate the baseline from the current findings and exit (the ratchet: review the diff — it should only shrink)")
		ratchet       = flag.Bool("ratchet", false, "fail when the baseline holds stale entries no finding matches (CI mode: forces the baseline to shrink)")
		sarifPath     = flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file ('-' for stdout)")
		summaryPath   = flag.String("summary", "", "write a per-analyzer markdown summary table to this file ('-' for stdout; CI appends it to the job summary)")
		fix           = flag.Bool("fix", false, "apply suggested fixes (mechanical rewrites such as the vtime.AddSat migration) to the source files")
		factsPath     = flag.String("facts", "", "facts cache file: hash-validated dependency facts are reused across runs and the refreshed cache is written back")
	)
	for _, a := range analyzers {
		prefix := a.Name + "."
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, prefix+f.Name, f.Usage)
		})
	}
	// go vet also probes with -flags, expecting a JSON description of the
	// tool's flags so it can decide which command-line flags to forward.
	for _, arg := range os.Args[1:] {
		if arg == "-flags" || arg == "--flags" {
			printFlagsJSON()
			return
		}
	}

	flag.Parse()

	if *list {
		printList(analyzers)
		return
	}

	selected, err := framework.SelectAnalyzers(analyzers, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], selected))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args, selected, standaloneOptions{
		baseline:      *baselinePath,
		writeBaseline: *writeBaseline,
		ratchet:       *ratchet,
		sarif:         *sarifPath,
		summary:       *summaryPath,
		fix:           *fix,
		facts:         *factsPath,
	}))
}

// printList renders every analyzer with its doc line and flags.
func printList(analyzers []*framework.Analyzer) {
	for _, a := range analyzers {
		fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		a.Flags.VisitAll(func(f *flag.Flag) {
			fmt.Printf("  -%s.%s (default %q)\n      %s\n", a.Name, f.Name, f.DefValue, f.Usage)
		})
	}
	fmt.Printf("%-12s %s\n", framework.AnnotationAnalyzer,
		"(always on) malformed //nicwarp: annotations: unknown verbs or missing reasons")
}

// printVersion answers the go command's -V=full probe. The expected shape
// is "<name> version <words...> buildID=<id>", where the ID fingerprints
// this binary for go's action cache.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(os.Args[0]), string(sum[:]))
}

// printFlagsJSON answers the go command's -flags probe with the schema
// cmd/go expects from a vet tool.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

type standaloneOptions struct {
	baseline      string
	writeBaseline bool
	ratchet       bool
	sarif         string
	summary       string
	fix           bool
	facts         string
}

// runStandalone drives the framework engine and renders its result:
// text findings on stderr, optional SARIF/summary artifacts, the fix
// applier, and the baseline ratchet.
func runStandalone(patterns []string, analyzers []*framework.Analyzer, opts standaloneOptions) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}
	modRoot, err := framework.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}
	resolve := func(p string) string {
		if p == "" || p == "-" || filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(modRoot, p)
	}

	res, err := framework.RunVet(framework.VetOptions{
		Analyzers:    analyzers,
		Patterns:     patterns,
		Dir:          cwd,
		BaselinePath: resolve(opts.baseline),
		FactsPath:    resolve(opts.facts),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
		return 1
	}

	if opts.facts != "" {
		if err := res.Facts.Save(resolve(opts.facts)); err != nil {
			fmt.Fprintln(os.Stderr, "nicwarp-vet: saving facts:", err)
			return 1
		}
	}

	if opts.writeBaseline {
		path := resolve(opts.baseline)
		if path == "" {
			fmt.Fprintln(os.Stderr, "nicwarp-vet: -writebaseline requires -baseline")
			return 1
		}
		if err := framework.NewBaseline(res.Findings).Save(path); err != nil {
			fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "nicwarp-vet: wrote %d baseline entr%s to %s\n",
			len(res.Findings), plural(len(res.Findings), "y", "ies"), path)
		return 0
	}

	if opts.fix {
		contents, err := framework.ApplyFixes(res.Fset, res.Findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
			return 1
		}
		if err := framework.WriteFixes(contents); err != nil {
			fmt.Fprintln(os.Stderr, "nicwarp-vet:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "nicwarp-vet: applied %d fix(es) across %d file(s)\n",
			framework.FixCount(res.Findings), len(contents))
	}

	if opts.sarif != "" {
		if err := writeTo(resolve(opts.sarif), func(w io.Writer) error {
			return framework.WriteSARIF(w, analyzers, res)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "nicwarp-vet: writing SARIF:", err)
			return 1
		}
	}
	if opts.summary != "" {
		if err := writeTo(resolve(opts.summary), func(w io.Writer) error {
			return writeSummary(w, analyzers, res)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "nicwarp-vet: writing summary:", err)
			return 1
		}
	}

	newFindings := res.NewFindings()
	for _, f := range newFindings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}

	exit := 0
	if len(newFindings) > 0 {
		suppressed := len(res.Findings) - len(newFindings)
		fmt.Fprintf(os.Stderr, "nicwarp-vet: %d finding(s) across %d package(s) (%d baselined)\n",
			len(newFindings), res.Packages, suppressed)
		exit = 1
	}
	if len(res.Stale) > 0 {
		for _, e := range res.Stale {
			fmt.Fprintf(os.Stderr, "nicwarp-vet: stale baseline entry: %s %s/%s: %q (count %d)\n",
				e.Analyzer, e.Package, e.File, e.Message, e.Count)
		}
		if opts.ratchet {
			fmt.Fprintf(os.Stderr, "nicwarp-vet: baseline is a ratchet: remove the %d stale entr%s "+
				"from %s (or regenerate with -writebaseline and review the shrink)\n",
				len(res.Stale), plural(len(res.Stale), "y", "ies"), opts.baseline)
			exit = 1
		}
	}
	return exit
}

// writeTo writes via fn to path, with "-" meaning stdout.
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSummary renders the per-analyzer counts table CI puts in the job
// summary: total findings, baseline-suppressed, and new (failing).
func writeSummary(w io.Writer, analyzers []*framework.Analyzer, res *framework.VetResult) error {
	counts := res.CountsByAnalyzer()
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	names = append(names, framework.AnnotationAnalyzer)
	sort.Strings(names)

	fmt.Fprintf(w, "### nicwarp-vet (%d packages)\n\n", res.Packages)
	fmt.Fprintln(w, "| analyzer | findings | baselined | new |")
	fmt.Fprintln(w, "|---|---:|---:|---:|")
	totalAll, totalSup := 0, 0
	for _, name := range names {
		c := counts[name]
		fmt.Fprintf(w, "| %s | %d | %d | %d |\n", name, c[0], c[1], c[0]-c[1])
		totalAll += c[0]
		totalSup += c[1]
	}
	fmt.Fprintf(w, "| **total** | **%d** | **%d** | **%d** |\n", totalAll, totalSup, totalAll-totalSup)
	if len(res.Stale) > 0 {
		fmt.Fprintf(w, "\n**%d stale baseline entr%s** — the ratchet requires removing them.\n",
			len(res.Stale), plural(len(res.Stale), "y", "ies"))
	}
	if len(res.FactsReused) > 0 {
		fmt.Fprintf(w, "\nfacts cache: reused %d package(s).\n", len(res.FactsReused))
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
