// Package stress sweeps fault scenario × seed matrices over the cluster
// model and judges every point with the protocol-invariant oracles
// (internal/invariant): a point passes when its run completes, no oracle
// fires, and — for scenarios with loss-free semantics — its committed
// digest is byte-identical to the application's fault-free baseline.
//
// The sweep is a pure function of its Options: the same matrix produces the
// same Report bytes whether the points run serially, on a parallel pool, or
// replay out of a warm cache, because every point is a deterministic
// cluster run keyed by its core.Config digest. Failing points are shrunk —
// workload scale halved, then the cluster narrowed — to the smallest
// configuration that still fails, and the shrunken point is emitted as a
// one-line `go run ./cmd/stress` repro command.
package stress

import (
	"encoding/json"
	"fmt"

	"nicwarp/internal/apps/phold"
	"nicwarp/internal/apps/police"
	"nicwarp/internal/apps/raid"
	"nicwarp/internal/core"
	"nicwarp/internal/fault"
	"nicwarp/internal/nic"
	"nicwarp/internal/runner"
	"nicwarp/internal/simnet"
	"nicwarp/internal/vtime"
)

// Options selects the sweep matrix. The zero value sweeps every
// application and every non-hostile scenario over four seeds at the
// default cluster size.
type Options struct {
	// Apps is the application subset (see AppNames); empty means all.
	Apps []string
	// Scenarios is the fault-scenario subset (see fault.Scenarios and
	// fault.AllScenarios); empty means every non-hostile scenario.
	Scenarios []string
	// Seeds is the fault-seed axis; empty means 1..4.
	Seeds []uint64
	// Nodes is the cluster size; 0 means 4.
	Nodes int
	// Scale multiplies workload sizes; 0 means 1.
	Scale float64
	// GVT selects the GVT implementation for every point; the zero value
	// means the paper's NIC ring GVT (core.GVTNIC). The host Mattern mode
	// is core.GVTMode's zero value and therefore not selectable here — the
	// stress matrix exists to exercise the NIC-resident protocols.
	GVT core.GVTMode
	// Topology selects the interconnect model; the zero value is the
	// crossbar.
	Topology simnet.Topology
	// Batch, when > 1, enables NIC-side send batching (nic.Config.BatchMax)
	// with a small flush horizon for every point, crossing the fault plane
	// over batch frames: a dropped or duplicated frame must conserve
	// credits and leave only classifiable sequence holes, exactly like the
	// equivalent burst of solo packets. 0 or 1 leaves batching off.
	Batch int
	// Shards is the per-point shard count; 0 or 1 means serial. Execution
	// strategy only: every judgement (digests, oracles, baselines) is
	// identical at any value, so a sharded sweep crossing the fault plane
	// over shard boundaries is itself a protocol check.
	Shards int
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, serves repeat points by config digest.
	Cache runner.Cache
	// OnProgress, when non-nil, observes point completions.
	OnProgress func(runner.Progress)
	// Verify additionally runs the sequential oracle inside every point
	// (core.Config.VerifyOracle). The digest-vs-baseline comparison below
	// already catches committed-state divergence; Verify also pins the
	// committed event count and costs one sequential run per point.
	Verify bool
	// Shrink reduces each failing point to a minimal repro command.
	Shrink bool
}

func (o Options) withDefaults() Options {
	if len(o.Apps) == 0 {
		o.Apps = AppNames()
	}
	if len(o.Scenarios) == 0 {
		o.Scenarios = fault.Scenarios()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3, 4}
	}
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.GVT == 0 {
		o.GVT = core.GVTNIC
	}
	return o
}

// net builds the Config.Net for the options topology: the zero value for
// the crossbar (core.Config.WithDefaults fills the fabric timing), the
// full fabric defaults plus the topology otherwise.
func (o Options) net() simnet.Config {
	if o.Topology == simnet.TopoCrossbar {
		return simnet.Config{}
	}
	net := simnet.DefaultConfig()
	net.Topology = o.Topology
	return net
}

// AppNames returns the stress workload names, in sweep order.
func AppNames() []string { return []string{"phold", "raid", "police"} }

// buildApp constructs a stress workload at the given scale. The base sizes
// are deliberately small: a stress matrix multiplies them by scenarios ×
// seeds, and fault episodes bite just as well on short runs.
func buildApp(name string, scale float64) (core.App, error) {
	scaled := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	switch name {
	case "phold":
		return phold.New(phold.Params{
			Objects: 16, Population: 1, Hops: scaled(60),
			MeanDelay: 40, Locality: 0.2,
		}), nil
	case "raid":
		return raid.New(raid.CancelConfig(scaled(400))), nil
	case "police":
		return police.New(police.DefaultConfig(scaled(48))), nil
	default:
		return nil, fmt.Errorf("stress: unknown app %q (valid: %v)", name, AppNames())
	}
}

// PointConfig builds the cluster configuration for one matrix point.
// Scenario "none" (or "") yields the application's fault-free baseline.
// The model seed is fixed: the fault seed is the swept axis, and holding
// the workload constant is what makes the digest comparison meaningful.
func PointConfig(app string, o Options, scenario string, seed uint64) (core.Config, error) {
	o = o.withDefaults()
	a, err := buildApp(app, o.Scale)
	if err != nil {
		return core.Config{}, err
	}
	plan, err := fault.PlanFor(scenario, seed)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		App:             a,
		Nodes:           o.Nodes,
		Seed:            7,
		GVT:             o.GVT,
		GVTPeriod:       50,
		EarlyCancel:     true,
		VerifyOracle:    o.Verify,
		CheckInvariants: true,
		Fault:           plan,
		Net:             o.net(),
	}
	if o.Batch > 1 {
		cfg.NIC = nic.DefaultConfig()
		cfg.NIC.BatchMax = o.Batch
		cfg.NIC.FlushHorizon = 20 * vtime.Microsecond
	}
	return cfg, nil
}

// Point is one judged matrix entry of a Report.
type Point struct {
	Name     string `json:"name"`
	App      string `json:"app"`
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Key is the config digest the point is cached under.
	Key string `json:"key"`
	// Cached is execution-trivia (it differs between a cold and a warm
	// run of the same matrix), so it is excluded from the report bytes.
	Cached bool `json:"-"`
	Pass   bool `json:"pass"`
	// Error is the run error, when the cluster failed to quiesce cleanly.
	Error string `json:"error,omitempty"`
	// Digest is the committed-state digest; Baseline mirrors the
	// fault-free digest it was compared against (loss-free scenarios).
	Digest    string `json:"digest,omitempty"`
	Baseline  string `json:"baseline,omitempty"`
	Committed int    `json:"committed,omitempty"`
	Faults    int64  `json:"faults,omitempty"`
	// Violations lists the invariant-oracle findings, in detection order.
	Violations []string `json:"violations,omitempty"`
	// Repro is the minimal single-line reproduction for a failing point.
	Repro string `json:"repro,omitempty"`
}

// Report is the sweep outcome, serialized as the JSON artifact cmd/stress
// and CI publish.
type Report struct {
	Apps      []string `json:"apps"`
	Scenarios []string `json:"scenarios"`
	Seeds     []uint64 `json:"seeds"`
	Nodes     int      `json:"nodes"`
	Scale     float64  `json:"scale"`
	GVT       string   `json:"gvt"`
	Topology  string   `json:"topology"`
	Batch     int      `json:"batch,omitempty"`
	Points    []Point  `json:"points"`
	Failures  int      `json:"failures"`
}

// JSON renders the report deterministically.
func (r *Report) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Sweep runs the full matrix and judges every point. Per-point failures
// land in the report; only a malformed Options (unknown app or scenario)
// errors out.
func Sweep(o Options) (*Report, error) {
	o = o.withDefaults()
	type slot struct {
		app, scenario string
		seed          uint64
		baseline      bool
	}
	var (
		jobs  []runner.Job
		slots []slot
	)
	for _, app := range o.Apps {
		cfg, err := PointConfig(app, o, "none", 0)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, runner.Job{Name: app + "/none", Config: cfg})
		slots = append(slots, slot{app: app, scenario: "none", baseline: true})
		for _, sc := range o.Scenarios {
			for _, seed := range o.Seeds {
				cfg, err := PointConfig(app, o, sc, seed)
				if err != nil {
					return nil, err
				}
				jobs = append(jobs, runner.Job{
					Name:   fmt.Sprintf("%s/%s/seed=%d", app, sc, seed),
					Config: cfg,
				})
				slots = append(slots, slot{app: app, scenario: sc, seed: seed})
			}
		}
	}

	pool := &runner.Runner{Workers: o.Workers, Cache: o.Cache, OnProgress: o.OnProgress,
		Exec: core.Exec{Shards: o.Shards}}
	results := pool.Run(jobs)

	rep := &Report{
		Apps: o.Apps, Scenarios: o.Scenarios, Seeds: o.Seeds,
		Nodes: o.Nodes, Scale: o.Scale,
		GVT: o.GVT.String(), Topology: o.Topology.String(), Batch: o.Batch,
	}
	baseline := "" // fault-free digest of the current app, in slot order
	for i, res := range results {
		s := slots[i]
		p := judge(res, s.app, s.scenario, s.seed, baseline)
		if s.baseline {
			baseline = p.Digest
		}
		if !p.Pass {
			rep.Failures++
			if o.Shrink {
				p.Repro = o.shrink(s.app, s.scenario, s.seed)
			}
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// judge converts one runner result into a judged point. A point fails on a
// run error, on any invariant-oracle violation, or — for scenarios whose
// faults keep loss-free semantics — on a committed digest differing from
// the application's fault-free baseline.
func judge(res runner.Result, app, scenario string, seed uint64, baseline string) Point {
	p := Point{
		Name: res.Job.Name, App: app, Scenario: scenario, Seed: seed,
		Key: res.Key, Cached: res.Cached,
	}
	if res.Err != nil {
		p.Error = res.Err.Error()
		return p
	}
	r := res.Res
	p.Digest = fmt.Sprintf("%016x", r.Digest)
	p.Committed = r.CommittedEvents
	p.Faults = r.FaultsInjected
	if rep := r.Invariants; rep != nil {
		for _, v := range rep.Violations {
			p.Violations = append(p.Violations, fmt.Sprintf("%s@node%d: %s", v.Rule, v.Node, v.Detail))
		}
		if extra := rep.ViolationsTotal - int64(len(rep.Violations)); extra > 0 {
			p.Violations = append(p.Violations, fmt.Sprintf("... %d more", extra))
		}
	}
	if len(p.Violations) > 0 {
		return p
	}
	if lossFree(scenario) && baseline != "" {
		p.Baseline = baseline
		if p.Digest != baseline {
			return p
		}
	}
	p.Pass = true
	return p
}

// lossFree reports whether the scenario's faults preserve loss-free
// semantics, i.e. whether its committed digest must match the fault-free
// baseline. Hostile scenarios (true loss, skewed reports) and the baseline
// itself are exempt.
func lossFree(scenario string) bool {
	if scenario == "" || scenario == "none" {
		return false
	}
	plan, err := fault.PlanFor(scenario, 1)
	return err == nil && !plan.Hostile()
}

// minShrinkScale bounds the workload-halving descent: below this the
// workloads degenerate to single events and stop exercising anything.
const minShrinkScale = 0.05

// shrink reduces a failing point to the smallest configuration that still
// fails — workload scale halved while the failure persists, then the
// cluster halved — and returns the one-line repro command for it. Every
// trial is a full deterministic re-run, so the command is guaranteed to
// reproduce the failure.
func (o Options) shrink(app, scenario string, seed uint64) string {
	cur := o.withDefaults()
	cur.Shrink = false
	for cand := cur.Scale / 2; cand >= minShrinkScale; cand /= 2 {
		trial := cur
		trial.Scale = cand
		if !trial.pointFails(app, scenario, seed) {
			break
		}
		cur = trial
	}
	for cand := cur.Nodes / 2; cand >= 2; cand /= 2 {
		trial := cur
		trial.Nodes = cand
		if !trial.pointFails(app, scenario, seed) {
			break
		}
		cur = trial
	}
	return cur.Repro(app, scenario, seed)
}

// pointFails re-runs one candidate point (and, for loss-free scenarios,
// its fault-free baseline at the same size) and reports whether the
// failure is still present.
func (o Options) pointFails(app, scenario string, seed uint64) bool {
	cfg, err := PointConfig(app, o, scenario, seed)
	if err != nil {
		return false // malformed candidate: not evidence of the failure
	}
	pool := &runner.Runner{Workers: 1, Retries: 0, Cache: o.Cache,
		Exec: core.Exec{Shards: o.Shards}}
	res := pool.Run([]runner.Job{{Name: "shrink", Config: cfg}})[0]
	baseline := ""
	if lossFree(scenario) {
		bcfg, err := PointConfig(app, o, "none", 0)
		if err != nil {
			return false
		}
		base := pool.Run([]runner.Job{{Name: "shrink-base", Config: bcfg}})[0]
		if base.Err != nil || base.Res == nil {
			return false // baseline itself broken: cannot attribute to the fault
		}
		baseline = fmt.Sprintf("%016x", base.Res.Digest)
	}
	return !judge(res, app, scenario, seed, baseline).Pass
}

// Repro formats the single-line reproduction command for a point,
// including the GVT mode and topology when they differ from the sweep
// defaults (the repro must rebuild the exact failing config).
func (o Options) Repro(app, scenario string, seed uint64) string {
	o = o.withDefaults()
	cmd := fmt.Sprintf("go run ./cmd/stress -apps %s -scenarios %s -seeds %d -nodes %d -scale %g",
		app, scenario, seed, o.Nodes, o.Scale)
	if o.GVT != core.GVTNIC {
		cmd += fmt.Sprintf(" -gvt %v", o.GVT)
	}
	if o.Topology != simnet.TopoCrossbar {
		cmd += fmt.Sprintf(" -topo %v", o.Topology)
	}
	if o.Batch > 1 {
		cmd += fmt.Sprintf(" -batch %d", o.Batch)
	}
	return cmd
}
