// Package walltime forbids wall-clock and ambient-entropy access in
// simulation code.
//
// The reproduction's correctness argument is a bit-exact comparison with a
// sequential oracle: every digest, event count and GVT trace must be a pure
// function of the experiment seed. A single time.Now() or math/rand draw in
// a simulation package silently breaks that — results still *look*
// plausible, they just stop being reproducible. Simulated time lives in
// nicwarp/internal/vtime and all randomness in nicwarp/internal/rng.
//
// Driver and CLI packages legitimately read the wall clock (progress
// meters, output timestamps); they are exempted through the -allow package
// allowlist, which defaults to nicwarp/cmd/... and nicwarp/examples/....
// An individual site in a non-allowlisted package can be sanctioned with a
// `//nicwarp:wallclock <reason>` annotation.
package walltime

import (
	"go/ast"
	"go/types"
	"strconv"

	"nicwarp/internal/analysis/framework"
)

// DefaultAllow is the default package allowlist: the driver/CLI layers.
const DefaultAllow = "nicwarp/cmd/...,nicwarp/examples/..."

// Analyzer implements the walltime check.
var Analyzer = &framework.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now etc.) and ambient randomness " +
		"(math/rand, crypto/rand) outside the driver allowlist",
	Run: run,
}

var allow string

func init() {
	Analyzer.Flags.StringVar(&allow, "allow", DefaultAllow,
		"comma-separated package patterns exempt from the check (p or p/...)")
}

// bannedImports are packages whose mere import defeats seeded determinism.
var bannedImports = map[string]string{
	"math/rand":    "use nicwarp/internal/rng (seeded, part of saved state)",
	"math/rand/v2": "use nicwarp/internal/rng (seeded, part of saved state)",
	"crypto/rand":  "use nicwarp/internal/rng (seeded, part of saved state)",
}

// bannedTimeFuncs are time-package functions that read or wait on the wall
// clock.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *framework.Pass) error {
	if framework.MatchPackage(allow, pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := bannedImports[path]; bad && !pass.Annotated(imp.Pos(), "wallclock") {
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package %s: %s", path, pass.Pkg.Path(), why)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[sel.Sel.Name] && !pass.Annotated(call.Pos(), "wallclock") {
				pass.Reportf(call.Pos(),
					"wall-clock access time.%s in deterministic package %s: "+
						"simulated time must come from nicwarp/internal/vtime",
					sel.Sel.Name, pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
