// Package des is the hardware-level discrete-event engine: the substitute
// for the paper's physical cluster. Every modeled component — host CPUs,
// PCI buses, NIC processors, links, the switch — advances by scheduling
// callbacks on a single deterministic Engine.
//
// The engine is intentionally sequential. The paper's claims are about
// *where* work happens (host vs NIC) and *how much* hardware time it costs,
// not about exploiting host parallelism in the reproduction; a sequential
// deterministic engine makes every experiment exactly reproducible and lets
// the test suite assert bit-identical metrics across runs.
package des

import (
	"container/heap"
	"fmt"

	"nicwarp/internal/vtime"
)

// event is one scheduled callback.
type event struct {
	at  vtime.ModelTime
	seq uint64 // FIFO tie-break among equal times
	fn  func()
	idx int // heap index, -1 when popped/cancelled
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x interface{}) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled callback that can be cancelled before it
// fires.
type Timer struct {
	ev     *event
	eng    *Engine
	cancel bool
}

// Cancel prevents the timer's callback from running. Cancelling an already
// fired or cancelled timer is a no-op. Reports whether the cancellation took
// effect.
func (t *Timer) Cancel() bool {
	if t == nil || t.cancel || t.ev.idx < 0 {
		return false
	}
	t.cancel = true
	heap.Remove(&t.eng.heap, t.ev.idx)
	return true
}

// Stopped reports whether the timer was cancelled.
func (t *Timer) Stopped() bool { return t != nil && t.cancel }

// Engine is the deterministic event-driven core. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now       vtime.ModelTime
	heap      eventHeap
	seq       uint64
	running   bool
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current model time.
func (e *Engine) Now() vtime.ModelTime { return e.now }

// Processed returns the number of callbacks executed so far, for diagnostics
// and runaway-detection in tests.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled, uncancelled callbacks.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule runs fn after delay d (which may be zero but not negative) and
// returns a cancelable handle. Callbacks at the same instant run in
// scheduling order.
func (e *Engine) Schedule(d vtime.ModelTime, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("des: Schedule with negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// At runs fn at absolute model time t, which must not be in the past.
func (e *Engine) At(t vtime.ModelTime, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("des: At(%v) is before now (%v)", t, e.now))
	}
	if fn == nil {
		panic("des: nil callback")
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, ev)
	return &Timer{ev: ev, eng: e}
}

// Run executes callbacks in time order until the event list is empty or the
// clock would pass limit. It returns the final clock value. Events exactly
// at limit still run. Run may be called repeatedly with growing limits.
func (e *Engine) Run(limit vtime.ModelTime) vtime.ModelTime {
	if e.running {
		panic("des: reentrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > limit {
			break
		}
		heap.Pop(&e.heap)
		e.now = next.at
		e.processed++
		fn := next.fn
		next.fn = nil
		// Mark any timer pointing here as fired via the idx sentinel;
		// Timer.Cancel checks idx < 0.
		fn()
	}
	return e.now
}

// Step executes exactly one callback if any is pending and reports whether
// one ran. Used by tests that need fine-grained control.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	next := heap.Pop(&e.heap).(*event)
	e.now = next.at
	e.processed++
	next.fn()
	return true
}
