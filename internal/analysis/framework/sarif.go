package framework

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// Minimal SARIF 2.1.0 writer, covering the subset code-scanning UIs and
// editors consume: one run, the analyzer suite as rules, findings as
// results with physical locations, and baseline-matched findings carried
// as suppressed results (so a SARIF viewer shows the ratchet debt instead
// of silently hiding it). File URIs are module-root-relative, keeping the
// artifact hermetic across checkouts and CI runners.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the run's findings as a SARIF 2.1.0 log.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, res *VetResult) error {
	rules := []sarifRule{{
		ID:               AnnotationAnalyzer,
		ShortDescription: sarifMessage{Text: "malformed //nicwarp: annotation (unknown verb or missing reason)"},
	}}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(res.Findings))
	for _, f := range res.Findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(res.ModRoot, uri); err == nil {
			uri = filepath.ToSlash(rel)
		}
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		}
		if f.Suppressed {
			r.Suppressions = []sarifSuppression{{
				Kind:          "external",
				Justification: "matched by results/VET_baseline.json (ratcheted pre-existing finding)",
			}}
		}
		results = append(results, r)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "nicwarp-vet", Rules: rules}},
			Results: results,
		}},
	})
}
