package timewarp

import "fmt"

// SequentialResult is the outcome of an oracle run.
type SequentialResult struct {
	// Digest is the committed-state digest across all objects.
	Digest uint64
	// Processed is the per-object committed event count.
	Processed map[ObjectID]int
	// TotalEvents is the total number of events executed.
	TotalEvents int
}

// Sequential executes the given objects to completion under a sequential
// discrete-event loop and returns the committed results.
//
// The oracle is a Time Warp kernel holding *every* object: with no remote
// objects, each send lands in the future of a single global
// lowest-timestamp-first scheduler, so no straggler can ever occur, no
// rollback happens, and execution is exactly the sequential order defined by
// Event.Compare. Any distributed run of the same objects — whatever the GVT
// manager, firmware or cancellation policy — must commit the same per-object
// event counts and the same final state digest.
//
// maxEvents bounds the run as a safety net against diverging models; pass 0
// for no bound. Sequential panics if the bound is exceeded.
func Sequential(objects map[ObjectID]Object, maxEvents int) SequentialResult {
	k := NewKernel(Config{LP: 0})
	// Deterministic registration order: ascending object ID.
	ids := make([]ObjectID, 0, len(objects))
	for id := range objects {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		k.AddObject(id, objects[id])
	}
	boot := k.Bootstrap()
	if len(boot.Remote) != 0 {
		panic("timewarp: sequential oracle produced remote events")
	}
	total := 0
	for k.HasWork() {
		res := k.ProcessOne()
		if len(res.Remote) != 0 {
			panic("timewarp: sequential oracle produced remote events")
		}
		if res.Rollbacks != 0 {
			panic("timewarp: sequential oracle rolled back")
		}
		total++
		if maxEvents > 0 && total > maxEvents {
			panic(fmt.Sprintf("timewarp: sequential oracle exceeded %d events", maxEvents))
		}
	}
	return SequentialResult{
		Digest:      k.CommittedDigest(),
		Processed:   k.ProcessedCounts(),
		TotalEvents: total,
	}
}
