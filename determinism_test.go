package nicwarp

import (
	"strings"
	"testing"

	"nicwarp/internal/runner"
)

// detOpts is a heavily scaled-down suite configuration: small enough that
// the three-way comparison below stays fast under -race, large enough that
// every point still rolls back and exchanges real traffic.
var detOpts = FigureOpts{Nodes: 4, Seed: 3, Scale: 0.01}

// renderWith executes an experiment's batch with the given executor and
// renders the table.
func renderWith(t *testing.T, exp Experiment, run func([]runner.Job) []runner.Result) string {
	t.Helper()
	tbl, err := exp.Render(detOpts, run(exp.Jobs(detOpts)))
	if err != nil {
		t.Fatal(err)
	}
	return tbl.String() + "\n" + tbl.CSV()
}

// TestParallelAndCachedRunsMatchSerial is the determinism contract of the
// parallel sweep runner: for the same seed, the serial loop (one Run call
// after another, the pre-runner code path), the parallel worker pool, and a
// cache-warm replay must render byte-identical tables — and the warm replay
// must execute zero points.
func TestParallelAndCachedRunsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-execution sweep comparison")
	}
	for _, name := range []string{"fig4", "fig78", "abl-gvt-algorithms"} {
		exp, err := ExperimentByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			// Serial reference: direct Run calls in submission order, no
			// pool, no cache.
			serial := renderWith(t, exp, func(jobs []runner.Job) []runner.Result {
				out := make([]runner.Result, len(jobs))
				for i, j := range jobs {
					res, err := Run(j.Config)
					out[i] = runner.Result{Job: j, Res: res, Err: err}
				}
				return out
			})

			// Parallel pool over a shared cache.
			cache := runner.NewMemCache()
			pool := &runner.Runner{Workers: 4, Cache: cache}
			parallel := renderWith(t, exp, pool.Run)
			if parallel != serial {
				t.Errorf("parallel table differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
			}

			// Cache-warm replay: byte-identical again, zero executions.
			jobs := exp.Jobs(detOpts)
			warmResults := pool.Run(jobs)
			if got := runner.CachedCount(warmResults); got != len(jobs) {
				t.Errorf("warm re-run executed %d of %d points", len(jobs)-got, len(jobs))
			}
			tbl, err := exp.Render(detOpts, warmResults)
			if err != nil {
				t.Fatal(err)
			}
			if warm := tbl.String() + "\n" + tbl.CSV(); warm != serial {
				t.Errorf("cache-warm table differs from serial:\n--- serial ---\n%s--- warm ---\n%s", serial, warm)
			}
		})
	}
}

// TestRegistryCoversSuite asserts the registry names the four figures and
// every ablation, resolves each name, and rejects unknown names with a
// listing.
func TestRegistryCoversSuite(t *testing.T) {
	want := []string{"fig4", "fig5", "fig6", "fig78", "figscale",
		"abl-nic-speed", "abl-drop-buffer", "abl-cancel-policy",
		"abl-gvt-algorithms", "abl-rx-buffer", "abl-gvt-tree",
		"abl-stress-faults", "abl-piggyback-patience", "abl-batching"}
	got := ExperimentNames()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("registry[%d] = %s, want %s", i, got[i], name)
		}
		exp, err := ExperimentByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if exp.Output == "" || exp.Description == "" || exp.Jobs == nil || exp.Render == nil {
			t.Errorf("experiment %s is incomplete", name)
		}
	}
	if _, err := ExperimentByName("fig9"); err == nil {
		t.Fatal("unknown experiment resolved")
	} else {
		for _, sub := range []string{"fig9", "fig4", "abl-nic-speed"} {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("unknown-name error missing %q: %v", sub, err)
			}
		}
	}
}
