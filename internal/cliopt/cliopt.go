// Package cliopt is the one place the nicwarp binaries' shared flags are
// defined. Each helper wraps a core.Parse* validator in a flag.Value, so a
// bad value fails at flag-parse time with the same *core.FieldError text in
// every binary — cmd/nicwarp, cmd/experiments and cmd/stress used to each
// hand-roll this plumbing, and execution knobs like -shards had to be wired
// (and documented, and error-checked) once per binary.
//
// The helpers register on an explicit *flag.FlagSet rather than the global
// CommandLine so tests can exercise them hermetically.
package cliopt

import (
	"flag"
	"strconv"

	"nicwarp/internal/core"
	"nicwarp/internal/simnet"
)

// shardsValue adapts core.ParseShards to the flag.Value protocol.
type shardsValue int

func (v *shardsValue) String() string { return strconv.Itoa(int(*v)) }

func (v *shardsValue) Set(s string) error {
	n, err := core.ParseShards(s)
	if err != nil {
		return err
	}
	*v = shardsValue(n)
	return nil
}

// topoValue adapts core.ParseTopology to the flag.Value protocol.
type topoValue simnet.Topology

func (v *topoValue) String() string { return simnet.Topology(*v).String() }

func (v *topoValue) Set(s string) error {
	t, err := core.ParseTopology(s)
	if err != nil {
		return err
	}
	*v = topoValue(t)
	return nil
}

// gvtValue adapts core.ParseGVTMode to the flag.Value protocol.
type gvtValue core.GVTMode

func (v *gvtValue) String() string { return core.GVTMode(*v).String() }

func (v *gvtValue) Set(s string) error {
	m, err := core.ParseGVTMode(s)
	if err != nil {
		return err
	}
	*v = gvtValue(m)
	return nil
}

// Shards registers the -shards flag on fs and returns the destination.
// The default is 1 (serial); malformed or non-positive values fail flag
// parsing with the core.ParseShards field error. Shard counts above the
// node count are legal here and clamped at run time, where the cluster
// size is known.
func Shards(fs *flag.FlagSet) *int {
	v := shardsValue(1)
	fs.Var(&v, "shards", "event-scheduler shards per run (execution strategy; results and digests are identical at any value)")
	return (*int)(&v)
}

// GVT registers the -gvt flag on fs with the given default mode and
// returns the destination. Unknown spellings fail flag parsing with the
// core.ParseGVTMode field error listing the accepted names.
func GVT(fs *flag.FlagSet, def core.GVTMode) *core.GVTMode {
	v := gvtValue(def)
	fs.Var(&v, "gvt", "GVT implementation: mattern, nic, pgvt, tree")
	return (*core.GVTMode)(&v)
}

// Topology registers the -topo flag on fs and returns the destination.
// The default is the crossbar; unknown spellings fail flag parsing with
// the core.ParseTopology field error listing the accepted names.
func Topology(fs *flag.FlagSet) *simnet.Topology {
	v := topoValue(simnet.TopoCrossbar)
	fs.Var(&v, "topo", "interconnect topology: crossbar, fattree, dragonfly")
	return (*simnet.Topology)(&v)
}

// Radix registers the -radix flag on fs and returns the destination. Zero
// (the default) means the topology's default switch radix; it only matters
// for the multi-stage topologies.
func Radix(fs *flag.FlagSet) *int {
	return fs.Int("radix", 0, "switch radix for multi-stage topologies (0 = default)")
}
