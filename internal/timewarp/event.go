// Package timewarp implements a WARPED-style optimistic parallel discrete
// event simulation kernel: logical processes hosting multiple simulation
// objects, timestamp-ordered optimistic execution, state saving on every
// event, rollback with aggressive or lazy cancellation, anti-message
// annihilation, and fossil collection below GVT.
//
// The kernel is deliberately free of any hardware-model or networking
// concern: it consumes and produces Events. The cluster layer
// (internal/core) converts outbound events to packets, charges host CPU
// costs for the work counts the kernel reports, and feeds inbound packets
// back in. This separation lets the kernel be verified exhaustively against
// a sequential oracle (see Sequential) independent of the hardware model.
package timewarp

import (
	"fmt"

	"nicwarp/internal/vtime"
)

// ObjectID identifies a simulation object globally (across all LPs).
type ObjectID int32

// Event is one Time Warp event message. Positive events carry application
// work; negative events (anti-messages) cancel a previously sent positive
// with the same ID.
//
// IDs are assigned deterministically from the sending object's rolled-back
// send counter, so a rolled-back re-execution that makes the same sends
// regenerates the same IDs. This gives the property the early-cancellation
// machinery relies on: an anti-message and the positive it cancels agree on
// ID no matter how execution interleaves, and the sequential oracle assigns
// identical IDs to committed events.
type Event struct {
	ID      uint64
	Src     ObjectID
	Dst     ObjectID
	SendTS  vtime.VTime
	RecvTS  vtime.VTime
	Sign    int8 // +1 positive, -1 anti
	Payload uint64

	// Kernel-internal queue plumbing, meaningful only while the event sits
	// in an object's pending queue. pos is the intrusive pendHeap slot
	// (-1 outside the heap); inext chains same-ID events in the
	// pending identity index. Both are overwritten on insertion, so events
	// copied or recycled with stale values are safe, and neither
	// participates in identity (sameIdentity) or the wire encoding.
	pos   int32
	inext *Event //nicwarp:owns intrusive index chain; unlinked by pendIndex.del, overwritten on insert
}

// MakeEventID composes the deterministic event ID from the sending object
// and its per-object send sequence number.
func MakeEventID(src ObjectID, seq uint64) uint64 {
	return uint64(uint32(src))<<32 | (seq & 0xFFFFFFFF)
}

// Anti returns the anti-message for a positive event.
func (e *Event) Anti() *Event {
	if e.Sign != 1 {
		panic("timewarp: Anti of a non-positive event")
	}
	a := *e
	a.Sign = -1
	return &a
}

// Compare imposes the total order used everywhere: by receive timestamp,
// then destination, send timestamp, source, and ID. The same comparator
// drives the optimistic scheduler, straggler detection and the sequential
// oracle, which is what makes their committed histories comparable.
func (e *Event) Compare(f *Event) int {
	switch {
	case e.RecvTS != f.RecvTS:
		return cmpV(e.RecvTS, f.RecvTS)
	case e.Dst != f.Dst:
		return cmpI(int64(e.Dst), int64(f.Dst))
	case e.SendTS != f.SendTS:
		return cmpV(e.SendTS, f.SendTS)
	case e.Src != f.Src:
		return cmpI(int64(e.Src), int64(f.Src))
	default:
		return cmpU(e.ID, f.ID)
	}
}

// Before reports whether e precedes f in the total order.
func (e *Event) Before(f *Event) bool { return e.Compare(f) < 0 }

// String renders a compact diagnostic form.
func (e *Event) String() string {
	sign := "+"
	if e.Sign < 0 {
		sign = "-"
	}
	return fmt.Sprintf("%sev[id=%d %d->%d st=%v rt=%v]", sign, e.ID, e.Src, e.Dst, e.SendTS, e.RecvTS)
}

func cmpV(a, b vtime.VTime) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpI(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpU(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
