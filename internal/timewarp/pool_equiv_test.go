package timewarp

import (
	"testing"
	"testing/quick"
)

// runPoolVariant executes one adversarial harness run with pooling on or
// off and returns everything observable: the committed-event total, the
// global digest, per-object digests and committed counts, and every kernel's
// full stats block.
func runPoolVariant(t *testing.T, nObj, nLP, budget int, policy CancellationPolicy, seed uint64, disablePool bool) (int, uint64, map[ObjectID]uint64, map[ObjectID]int, []Stats) {
	t.Helper()
	assign := func(id ObjectID) int { return int(id) % nLP }
	h := newHarnessPool(nLP, buildObjs(nObj, budget, seed), assign, policy, seed*31+7, disablePool)
	committed := h.run(t)
	objDigests := make(map[ObjectID]uint64)
	objCounts := make(map[ObjectID]int)
	var st []Stats
	for _, k := range h.kernels {
		for id, n := range k.ProcessedCounts() {
			objCounts[id] = n
			objDigests[id] = k.ObjectDigest(id)
		}
		st = append(st, k.Stats)
	}
	return committed, h.digest(), objDigests, objCounts, st
}

// TestPoolingIsObservationallyInvisible is the property test required by the
// pooling work: for random seeds and both cancellation policies, a run with
// event pooling enabled is indistinguishable — digests, per-object state,
// per-object committed counts, and every stats counter — from a run where
// every event is freshly allocated. Any stale-field leak, double release, or
// aliasing bug in the pool shows up as a divergence here, because the
// adversarial harness drives heavy rollback, annihilation and zombie
// traffic through exactly the paths with release points.
func TestPoolingIsObservationallyInvisible(t *testing.T) {
	property := func(rawSeed uint16, lazy bool) bool {
		// Same seed range the oracle-equivalence tests prove convergent;
		// arbitrary seeds can rollback-thrash past the harness step bound.
		seed := uint64(rawSeed)%8 + 1
		policy := Aggressive
		if lazy {
			policy = Lazy
		}
		c1, d1, od1, oc1, st1 := runPoolVariant(t, 6, 3, 40, policy, seed, false)
		c2, d2, od2, oc2, st2 := runPoolVariant(t, 6, 3, 40, policy, seed, true)
		if c1 != c2 || d1 != d2 {
			t.Logf("seed %d policy %v: committed %d/%d digest %x/%x", seed, policy, c1, c2, d1, d2)
			return false
		}
		for id, dg := range od1 {
			if od2[id] != dg || oc1[id] != oc2[id] {
				t.Logf("seed %d policy %v: object %d digest %x/%x count %d/%d",
					seed, policy, id, dg, od2[id], oc1[id], oc2[id])
				return false
			}
		}
		for i := range st1 {
			if st1[i] != st2[i] {
				t.Logf("seed %d policy %v: kernel %d stats diverge:\npooled:   %+v\ndisabled: %+v",
					seed, policy, i, st1[i], st2[i])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPoolingUnderRollbackPressure pins one deliberately nasty configuration
// (more objects than LPs, long budget, aggressive policy) and additionally
// asserts the run actually recycled events and provoked rollbacks — a pool
// equivalence test that never exercises the pool proves nothing.
func TestPoolingUnderRollbackPressure(t *testing.T) {
	seed := uint64(7)
	assign := func(id ObjectID) int { return int(id) % 3 }
	h := newHarnessPool(3, buildObjs(9, 80, seed), assign, Aggressive, seed*31+7, false)
	h.run(t)
	var rollbacks, annihilations int64
	pooled := 0
	for _, k := range h.kernels {
		rollbacks += k.Stats.Rollbacks.Value()
		annihilations += k.Stats.Annihilations.Value()
		pooled += len(k.pool.free)
	}
	if rollbacks == 0 {
		t.Fatal("no rollbacks; the pressure test exerts no pressure")
	}
	if annihilations == 0 {
		t.Fatal("no annihilations; release points at annihilation untested")
	}
	if pooled == 0 {
		t.Fatal("free lists empty after a run with fossil collection; events are not being recycled")
	}

	h2 := newHarnessPool(3, buildObjs(9, 80, seed), assign, Aggressive, seed*31+7, true)
	h2.run(t)
	if h.digest() != h2.digest() {
		t.Fatalf("digest diverges under rollback pressure: pooled %x, disabled %x", h.digest(), h2.digest())
	}
}
