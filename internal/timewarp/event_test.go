package timewarp

import (
	"sort"
	"testing"
	"testing/quick"

	"nicwarp/internal/vtime"
)

func TestMakeEventID(t *testing.T) {
	a := MakeEventID(1, 0)
	b := MakeEventID(1, 1)
	c := MakeEventID(2, 0)
	if a == b || a == c || b == c {
		t.Fatal("IDs must be distinct across src and seq")
	}
	if MakeEventID(1, 5) != MakeEventID(1, 5) {
		t.Fatal("IDs must be deterministic")
	}
}

func TestAnti(t *testing.T) {
	e := &Event{ID: 9, Src: 1, Dst: 2, SendTS: 3, RecvTS: 7, Sign: 1, Payload: 11}
	a := e.Anti()
	if a.Sign != -1 {
		t.Fatal("anti sign")
	}
	if !sameIdentity(e, a) {
		t.Fatal("anti must share full identity with its positive")
	}
	if e.Sign != 1 {
		t.Fatal("Anti must not mutate the original")
	}
}

func TestAntiOfAntiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Event{Sign: -1}).Anti()
}

func TestCompareOrder(t *testing.T) {
	// Events in strictly increasing order under the comparator.
	ordered := []*Event{
		{RecvTS: 1, Dst: 5, SendTS: 9, Src: 9, ID: 9},
		{RecvTS: 2, Dst: 0, SendTS: 0, Src: 0, ID: 0},
		{RecvTS: 2, Dst: 1, SendTS: 0, Src: 0, ID: 0},
		{RecvTS: 2, Dst: 1, SendTS: 1, Src: 0, ID: 0},
		{RecvTS: 2, Dst: 1, SendTS: 1, Src: 2, ID: 0},
		{RecvTS: 2, Dst: 1, SendTS: 1, Src: 2, ID: 3},
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Fatalf("Compare(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	f := func(r1, r2 int8, d1, d2 int8, s1, s2 uint8, id1, id2 uint8) bool {
		a := &Event{RecvTS: vtime.VTime(r1), Dst: ObjectID(d1), Src: ObjectID(s1), ID: uint64(id1)}
		b := &Event{RecvTS: vtime.VTime(r2), Dst: ObjectID(d2), Src: ObjectID(s2), ID: uint64(id2)}
		ab, ba := a.Compare(b), b.Compare(a)
		if ab != -ba {
			return false // antisymmetry
		}
		if ab == 0 {
			// Equal keys: all compared fields match.
			return a.RecvTS == b.RecvTS && a.Dst == b.Dst && a.Src == b.Src && a.ID == b.ID
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventHeapOrdering(t *testing.T) {
	events := []*Event{
		{RecvTS: 30, ID: 1}, {RecvTS: 10, ID: 2}, {RecvTS: 20, ID: 3},
		{RecvTS: 10, ID: 1}, {RecvTS: 5, ID: 9},
	}
	var h []*Event
	for _, e := range events {
		h = append(h, e)
	}
	sort.Slice(h, func(i, j int) bool { return h[i].Before(h[j]) })
	for i := 1; i < len(h); i++ {
		if h[i].Before(h[i-1]) {
			t.Fatal("sort by Before not consistent")
		}
	}
	if h[0].RecvTS != 5 {
		t.Fatalf("min = %v", h[0])
	}
}

func TestEventString(t *testing.T) {
	e := &Event{ID: 1, Src: 2, Dst: 3, SendTS: 4, RecvTS: 5, Sign: 1}
	if e.String() == "" || e.Anti().String() == "" {
		t.Fatal("empty String")
	}
	if e.String() == e.Anti().String() {
		t.Fatal("positive and anti should render differently")
	}
}

func TestDigestMixSensitivity(t *testing.T) {
	if DigestMix(1, 2) == DigestMix(1, 3) {
		t.Fatal("digest must depend on value")
	}
	if DigestMix(1, 2) == DigestMix(2, 2) {
		t.Fatal("digest must depend on accumulator")
	}
}
