package core

import (
	"reflect"
	"testing"

	"nicwarp/internal/fault"
)

// faultConfig is a workload heavy enough that every scenario's faults
// actually bite: early cancellation for NIC drops, NIC-GVT for control
// traffic, enough hops for sustained cross-node chatter.
func faultConfig(scenario string, seed uint64) Config {
	cfg := Config{
		App:             pholdApp(16, 60),
		Nodes:           4,
		Seed:            7,
		GVT:             GVTNIC,
		GVTPeriod:       50,
		EarlyCancel:     true,
		VerifyOracle:    true,
		CheckInvariants: true,
	}
	plan, err := fault.PlanFor(scenario, seed)
	if err != nil {
		panic(err)
	}
	cfg.Fault = plan
	return cfg
}

// TestFaultFreeInvariantsHold wires the oracles into a clean run: nothing
// may be flagged, and the checker must have actually seen traffic.
func TestFaultFreeInvariantsHold(t *testing.T) {
	res := mustRun(t, faultConfig("none", 0))
	rep := res.Invariants
	if rep == nil || !rep.Checked {
		t.Fatal("no invariant report attached")
	}
	if rep.Failed() {
		t.Fatalf("fault-free run violated invariants: %+v", rep.Violations)
	}
	if rep.Sent == 0 || rep.Delivered == 0 || rep.GVTCommits == 0 {
		t.Fatalf("oracles saw no traffic: %+v", rep)
	}
	if rep.Sent != rep.Delivered+rep.Discarded {
		t.Fatalf("conservation mismatch: sent %d != delivered %d + discarded %d",
			rep.Sent, rep.Delivered, rep.Discarded)
	}
}

// TestFaultScenariosPreserveResults runs every non-hostile scenario under
// the sequential oracle and the invariant oracles: wire chaos that keeps
// loss-free semantics must leave committed results byte-identical to the
// fault-free run, with no invariant violations.
func TestFaultScenariosPreserveResults(t *testing.T) {
	baseline := mustRun(t, faultConfig("none", 0))
	for _, scenario := range fault.Scenarios() {
		t.Run(scenario, func(t *testing.T) {
			res := mustRun(t, faultConfig(scenario, 99))
			if res.Invariants.Failed() {
				t.Fatalf("invariants violated: %+v", res.Invariants.Violations)
			}
			if res.FaultsInjected == 0 {
				t.Fatalf("scenario %q injected nothing on this workload", scenario)
			}
			if res.Digest != baseline.Digest || res.CommittedEvents != baseline.CommittedEvents {
				t.Fatalf("committed results diverged from fault-free run: digest %x (want %x), events %d (want %d)",
					res.Digest, baseline.Digest, res.CommittedEvents, baseline.CommittedEvents)
			}
		})
	}
}

// TestFaultReplayIsByteIdentical runs the same plan + seed twice and
// requires identical invariant reports and fault counters, the property
// the stress harness's shrinking and the runner cache rely on.
func TestFaultReplayIsByteIdentical(t *testing.T) {
	a := mustRun(t, faultConfig("chaos", 42))
	b := mustRun(t, faultConfig("chaos", 42))
	if a.Digest != b.Digest || a.CommittedEvents != b.CommittedEvents {
		t.Fatalf("replay diverged: digest %x vs %x", a.Digest, b.Digest)
	}
	if !reflect.DeepEqual(a.Invariants, b.Invariants) {
		t.Fatalf("invariant reports differ across replays:\n%+v\n%+v", a.Invariants, b.Invariants)
	}
	if a.FaultsInjected != b.FaultsInjected || a.BIPDuplicates != b.BIPDuplicates ||
		a.BIPLateFilled != b.BIPLateFilled {
		t.Fatalf("fault accounting differs across replays: %d/%d/%d vs %d/%d/%d",
			a.FaultsInjected, a.BIPDuplicates, a.BIPLateFilled,
			b.FaultsInjected, b.BIPDuplicates, b.BIPLateFilled)
	}
	// A different fault seed must change the schedule (else the seed is
	// not actually wired through).
	c := mustRun(t, faultConfig("chaos", 43))
	if c.FaultsInjected == a.FaultsInjected && reflect.DeepEqual(a.Invariants, c.Invariants) &&
		c.ExecTime == a.ExecTime {
		t.Fatalf("changing the fault seed changed nothing")
	}
}

// TestSkewGVTCaughtByOracle proves the oracle detects a deliberately
// broken invariant: the skewgvt scenario corrupts only the GVT value
// reported to the checker, so the run itself stays sound while the
// gvt-safety rule must fire.
func TestSkewGVTCaughtByOracle(t *testing.T) {
	cl, err := NewCluster(faultConfig("skewgvt", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run()
	if err != nil {
		t.Fatalf("skewgvt must not break the run itself: %v", err)
	}
	rep := res.Invariants
	if !rep.Failed() {
		t.Fatal("skewed GVT reports were not flagged")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "gvt-safety" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("expected a gvt-safety violation, got %+v", rep.Violations)
	}
}

// TestRingStressBackpressures asserts the ring-exhaustion scenario
// actually exercised the NIC paths (holds or stalls happened) and still
// converged correctly.
func TestRingStressBackpressures(t *testing.T) {
	res := mustRun(t, faultConfig("ringstress", 5))
	if res.FaultsInjected == 0 {
		t.Fatal("ringstress never held a slot or stalled a pump")
	}
	if res.Invariants.Failed() {
		t.Fatalf("ringstress violated invariants: %+v", res.Invariants.Violations)
	}
}
