package des

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nicwarp/internal/vtime"
)

// Group ties several engines into one sharded run under a bounded-lag
// window protocol. Each round the coordinator computes the global minimum
// pending time M, opens a window [M, M+lookahead), and releases every
// engine to run its own events strictly inside the window on its own
// goroutine. Cross-shard events produced during the window are staged in
// the source engine's per-destination outbox; at the barrier the
// coordinator merges each destination's inbound events in a deterministic
// order — sorted by (time, order key), where the order key encodes
// (source lane, source sequence) — before the next round opens.
//
// Safety requires that every cross-shard event lands at least `lookahead`
// past the sender's clock; AtCross enforces this at staging time, so a
// model whose minimum cross-shard latency is overstated fails loudly
// instead of silently reordering.
type Group struct {
	engines   []*Engine
	lookahead vtime.ModelTime
	workers   []shardWorker
	mergeBuf  []stagedEv
}

// shardWorker is the coordinator↔worker mailbox for one non-coordinator
// shard. round/done carry the release/park handshake; horizon is written
// by the coordinator before the round release store, so the worker's
// acquiring load of round orders the horizon read correctly. The padding
// keeps mailboxes on separate cache lines.
type shardWorker struct {
	_       [64]byte
	round   atomic.Uint32
	done    atomic.Uint32
	horizon vtime.ModelTime
	stop    bool
	_       [64]byte
}

// NewGroup wires engines into a shard group with the given minimum
// cross-shard latency. Lookahead must be positive: it is the window width,
// and a zero window cannot make progress. Engines must not already belong
// to a group.
func NewGroup(engines []*Engine, lookahead vtime.ModelTime) *Group {
	if len(engines) == 0 {
		panic("des: NewGroup with no engines")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("des: NewGroup with nonpositive lookahead %v", lookahead))
	}
	g := &Group{engines: engines, lookahead: lookahead}
	for i, e := range engines {
		if e.group != nil {
			panic("des: engine already belongs to a Group")
		}
		e.group = g
		e.shard = i
		e.staged = make([][]stagedEv, len(engines))
	}
	if len(engines) > 1 {
		g.workers = make([]shardWorker, len(engines)-1)
	}
	return g
}

// Engines returns the member engines in shard order.
func (g *Group) Engines() []*Engine { return g.engines }

// Now returns the run's clock: the maximum of the member clocks. Members
// advance independently inside a window, but at every barrier all clocks
// sit within one window of each other, and after Run returns the maximum
// equals the serial engine's final clock.
func (g *Group) Now() vtime.ModelTime {
	var m vtime.ModelTime
	for _, e := range g.engines {
		m = vtime.MaxM(m, e.now)
	}
	return m
}

// Pending returns the total number of scheduled callbacks across members,
// including staged cross-shard events not yet merged.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.heap.len()
		for _, s := range e.staged {
			n += len(s)
		}
	}
	return n
}

// Processed returns the total number of callbacks executed across members.
func (g *Group) Processed() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.processed
	}
	return n
}

// addSatM is saturating ModelTime addition for window arithmetic, where
// limit may be ModelInfinity.
func addSatM(a, b vtime.ModelTime) vtime.ModelTime {
	if s := a + b; s >= a {
		return s
	}
	return vtime.ModelInfinity
}

// Run executes the group until no member has an event at or below limit.
// With one member it is exactly Engine.Run. With several it runs the
// window protocol, spinning up one goroutine per extra shard for the
// duration of the call — except on a single-processor runtime, where the
// spin barrier could only burn scheduler quanta and every window runs
// sequentially on the calling goroutine instead.
func (g *Group) Run(limit vtime.ModelTime) vtime.ModelTime {
	if len(g.engines) == 1 {
		return g.engines[0].Run(limit)
	}
	// Events staged before Run (boot-time cross-shard scheduling) must be
	// merged before the first window opens.
	g.merge()
	if runtime.GOMAXPROCS(0) == 1 {
		return g.runInline(limit)
	}

	var wg sync.WaitGroup
	for i := 1; i < len(g.engines); i++ {
		wg.Add(1)
		go g.workerLoop(g.engines[i], &g.workers[i-1], &wg)
	}
	round := uint32(0)
	for {
		m := vtime.ModelInfinity
		none := true
		for _, e := range g.engines {
			if e.heap.len() > 0 {
				none = false
				m = vtime.MinM(m, e.heap.minAt())
			}
		}
		if none || m > limit {
			break
		}
		// Events exactly at limit must run (Engine.Run is inclusive), and
		// runWindow is strict, so the horizon is capped at limit+1.
		h := vtime.MinM(addSatM(m, g.lookahead), addSatM(limit, 1))
		active, solo := 0, -1
		for i, e := range g.engines {
			if e.heap.len() > 0 && e.heap.minAt() < h {
				active++
				solo = i
			}
		}
		if active == 1 {
			// One busy shard: run it inline instead of paying the barrier.
			g.engines[solo].runWindow(h)
		} else {
			round++
			for i := range g.workers {
				w := &g.workers[i]
				w.horizon = h
				w.round.Store(round)
			}
			g.engines[0].runWindow(h)
			for i := range g.workers {
				w := &g.workers[i]
				for spin := 0; w.done.Load() != round; spin++ {
					if spin > 64 {
						runtime.Gosched()
					}
				}
			}
		}
		g.merge()
	}
	round++
	for i := range g.workers {
		w := &g.workers[i]
		w.stop = true
		w.round.Store(round)
	}
	wg.Wait()
	return g.Now()
}

// runInline is the window protocol without workers or barriers: each
// round's active windows run back to back in shard order on the calling
// goroutine. Within a round every engine touches only its own heap, arena,
// and staging buffers, and the barrier merge already imposes an execution-
// order-independent sort, so the committed schedule is byte-identical to
// the parallel path's.
func (g *Group) runInline(limit vtime.ModelTime) vtime.ModelTime {
	for {
		m := vtime.ModelInfinity
		none := true
		for _, e := range g.engines {
			if e.heap.len() > 0 {
				none = false
				m = vtime.MinM(m, e.heap.minAt())
			}
		}
		if none || m > limit {
			return g.Now()
		}
		h := vtime.MinM(addSatM(m, g.lookahead), addSatM(limit, 1))
		for _, e := range g.engines {
			if e.heap.len() > 0 && e.heap.minAt() < h {
				e.runWindow(h)
			}
		}
		g.merge()
	}
}

// workerLoop parks on the mailbox until the coordinator releases a round,
// runs the shard's window, and reports done. Plain loads of horizon/stop
// are ordered by the acquiring load of round.
func (g *Group) workerLoop(e *Engine, w *shardWorker, wg *sync.WaitGroup) {
	defer wg.Done()
	seen := uint32(0)
	for {
		for spin := 0; ; spin++ {
			if r := w.round.Load(); r != seen {
				seen = r
				break
			}
			if spin > 64 {
				runtime.Gosched()
			}
		}
		if w.stop {
			return
		}
		e.runWindow(w.horizon)
		w.done.Store(seen)
	}
}

// merge moves every staged cross-shard event into its destination heap.
// For each destination, inbound events from all sources are collected and
// sorted by (time, order key) before insertion: the order key embeds
// (source lane, source sequence), so the resulting heap order is the
// ISSUE's stable (vtime, src, seq) merge rule and is independent of shard
// count and of goroutine completion order. Runs only on the coordinator
// between windows.
func (g *Group) merge() {
	for d, dst := range g.engines {
		buf := g.mergeBuf[:0]
		for _, src := range g.engines {
			s := src.staged[d]
			if len(s) == 0 {
				continue
			}
			buf = append(buf, s...)
			for i := range s {
				s[i] = stagedEv{}
			}
			src.staged[d] = s[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].at != buf[j].at {
				return buf[i].at < buf[j].at
			}
			return buf[i].ord < buf[j].ord
		})
		for i := range buf {
			se := &buf[i]
			if se.at < dst.now {
				panic(fmt.Sprintf("des: merged cross-shard event at %v is before destination clock %v", se.at, dst.now))
			}
			dst.ensureLane(se.lane)
			ei := dst.insert(se.at, se.ord, se.lane)
			ev := &dst.arena[ei]
			ev.fn2 = se.fn2
			ev.arg = se.a
			ev.argB = se.b
			buf[i] = stagedEv{}
		}
		g.mergeBuf = buf[:0]
	}
}
