package firmware

import (
	"fmt"

	"nicwarp/internal/nic"
	"nicwarp/internal/proto"
	"nicwarp/internal/stats"
)

// BatchFirmware is the send-batching / anti-coalescing offload: when the
// transmit pump dequeues an event-like packet, the firmware gathers the
// queued packets bound for the same destination and folds them — positives
// and anti-messages alike — into one KindBatch frame behind a single wire
// header. One frame costs one send credit, one receive slot, one bus DMA
// on each side, and one arbitrated unit in the fabric; the folded messages
// cost PerSubMsgCycles of LanAI processor work each, which is what keeps
// the batching-vs-latency tradeoff a modeled curve rather than a free
// lunch (sPIN-style per-handler cycle budgeting).
//
// BatchFirmware composes by wrapping: every gathered packet still passes
// the inner firmware's OnHostSend exactly once, so early cancellation can
// drop an individual sub-message at assembly time (the frame then carries
// a sequence hole the receiver's BIP endpoint records through the ordinary
// missing-range machinery, and the stranded credit flows through the same
// refund path as a solo drop). On the receive side a frame is expanded
// back into per-sub-message views for the inner firmware, preserving the
// anti-message numbering that the cancellation consistency handshake
// depends on.
type BatchFirmware struct {
	inner        nic.Firmware
	max          int
	perSubCycles int64

	// sub is the reusable synthesized per-sub-message view handed to the
	// inner firmware on the receive side. It is valid only for the
	// duration of one inner hook call; no current firmware retains packet
	// pointers past its hook (the NIC clears its scratch views on the same
	// contract).
	sub proto.Packet

	// Statistics.
	FramesAssembled stats.Counter // frames built (≥2 sub-messages each)
	SubsFolded      stats.Counter // packets folded into frames
	SubsDropped     stats.Counter // gathered packets cancelled at assembly
	AntisCoalesced  stats.Counter // anti-messages among the folded subs
	FramesExpanded  stats.Counter // inbound frames expanded for the host
}

// NewBatch wraps inner with batch assembly. max is the frame capacity in
// sub-messages (counting the head); perSubCycles is the NIC processor work
// charged per sub-message folded or expanded.
func NewBatch(inner nic.Firmware, max int, perSubCycles int64) *BatchFirmware {
	if inner == nil {
		panic("firmware: NewBatch nil inner")
	}
	if max < 2 {
		panic("firmware: NewBatch max must be >= 2")
	}
	if max > proto.MaxBatchSubs {
		max = proto.MaxBatchSubs
	}
	return &BatchFirmware{inner: inner, max: max, perSubCycles: perSubCycles}
}

// Name implements nic.Firmware.
func (f *BatchFirmware) Name() string {
	return fmt.Sprintf("batch%d(%s)", f.max, f.inner.Name())
}

// OnHostSend implements nic.Firmware by delegating: the dequeued head is
// inspected by the inner firmware first; assembly runs afterwards through
// the Batcher hook (AssembleBatch), once the head is known to travel.
func (f *BatchFirmware) OnHostSend(pkt *proto.Packet, api nic.API) nic.Verdict {
	return f.inner.OnHostSend(pkt, api)
}

// OnDoorbell implements nic.Firmware.
func (f *BatchFirmware) OnDoorbell(api nic.API) { f.inner.OnDoorbell(api) }

// OnWireReceive implements nic.Firmware: an inbound batch frame is
// expanded into per-sub-message views so the inner firmware observes the
// same traffic it would have seen unbatched — in particular, each folded
// anti-message is numbered and opens its cancellation window exactly as a
// solo anti would. Everything else passes straight through.
func (f *BatchFirmware) OnWireReceive(pkt *proto.Packet, api nic.API) nic.Verdict {
	if pkt.Kind != proto.KindBatch {
		return f.inner.OnWireReceive(pkt, api)
	}
	api.Charge(CyclesHeaderCheck + f.perSubCycles*int64(len(pkt.Subs)))
	f.FramesExpanded.Inc()
	for i := range pkt.Subs {
		s := &pkt.Subs[i]
		f.sub = proto.Packet{
			Seq:        pkt.Seq + uint64(s.SeqDelta),
			SrcNode:    pkt.SrcNode,
			DstNode:    pkt.DstNode,
			WireDup:    pkt.WireDup,
			Kind:       s.Kind,
			SrcObj:     s.SrcObj,
			DstObj:     s.DstObj,
			SendTS:     s.SendTS,
			RecvTS:     s.RecvTS,
			EventID:    s.EventID,
			Payload:    s.Payload,
			ColorEpoch: s.ColorEpoch,
		}
		if v := f.inner.OnWireReceive(&f.sub, api); v != nic.VerdictForward {
			// A frame travels and is delivered as a unit; no composed
			// firmware consumes event-like traffic on receive, and a
			// partial frame consumption has no meaning here.
			panic(fmt.Sprintf("firmware: inner %s returned %v for batched sub-message", f.inner.Name(), v))
		}
	}
	f.sub = proto.Packet{}
	return nic.VerdictForward
}

// AssembleBatch implements nic.Batcher: called by the transmit pump after
// the head packet cleared the inner firmware with a Forward verdict. It
// gathers the queued same-destination partners (up to capacity, stopping
// at the first packet that must dequeue alone — the gathered sequence
// numbers stay a contiguous prefix of the per-destination stream), runs
// each partner through the inner firmware, and folds the survivors behind
// one header. Returns nil when no partner is available, leaving the head
// to travel as an ordinary packet.
func (f *BatchFirmware) AssembleBatch(head *proto.Packet, api nic.API) *proto.Packet {
	partners := api.GatherBatch(head.DstNode, f.max-1)
	if len(partners) == 0 {
		return nil
	}
	frame := api.AllocFrame()
	frame.Kind = proto.KindBatch
	frame.Seq = head.Seq
	frame.SrcNode = head.SrcNode
	frame.DstNode = head.DstNode
	frame.Credits = head.Credits
	frame.CreditRepair = head.CreditRepair
	frame.ColorEpoch = head.ColorEpoch
	frame.PiggyAntiEpoch = head.PiggyAntiEpoch
	f.fold(frame, head)
	api.RecycleHostPacket(head)
	for _, p := range partners {
		// Each partner passes the inner firmware exactly once, here — the
		// white-send GVT count, piggyback extraction, and the early-cancel
		// drop predicate all see the same per-packet traffic as an
		// unbatched run.
		if v := f.inner.OnHostSend(p, api); v != nic.VerdictForward {
			// Cancelled at assembly: the frame keeps going with a hole at
			// this sub-message's sequence number. The drop is booked by
			// the inner firmware (drop buffer, credit refund, white
			// balance) and observed by the host like any send-side drop.
			f.SubsDropped.Inc()
			api.Stats().BatchSubDrops.Inc()
			api.DiscardHostPacket(p)
			continue
		}
		// Flow-control state rides once per frame: fold any credit return
		// or repaired credit the partner carried into the header.
		frame.Credits += p.Credits
		frame.CreditRepair += p.CreditRepair
		if p.PiggyAntiEpoch > frame.PiggyAntiEpoch {
			frame.PiggyAntiEpoch = p.PiggyAntiEpoch
		}
		f.fold(frame, p)
		api.RecycleHostPacket(p)
	}
	api.Charge(f.perSubCycles * int64(len(frame.Subs)))
	f.FramesAssembled.Inc()
	return frame
}

// fold appends one packet's event fields to the frame as a sub-message.
func (f *BatchFirmware) fold(frame, p *proto.Packet) {
	if p.Seq < frame.Seq {
		panic("firmware: batch partner sequence below frame base")
	}
	frame.Subs = append(frame.Subs, proto.SubMsg{
		Kind:       p.Kind,
		SeqDelta:   uint32(p.Seq - frame.Seq),
		SrcObj:     p.SrcObj,
		DstObj:     p.DstObj,
		SendTS:     p.SendTS,
		RecvTS:     p.RecvTS,
		EventID:    p.EventID,
		Payload:    p.Payload,
		ColorEpoch: p.ColorEpoch,
	})
	f.SubsFolded.Inc()
	if p.Kind == proto.KindAnti {
		f.AntisCoalesced.Inc()
	}
}
