// Package framework is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that the nicwarp-vet suite
// needs. The container this repository builds in has no module proxy
// access, so x/tools cannot be vendored; the subset used here — Analyzer,
// Pass, Diagnostic, a package loader and an analysistest-style fixture
// runner — is rebuilt on the standard library (go/ast, go/parser, go/types,
// go/importer) with the same shapes, so analyzers written against it port
// to the real API mechanically if the dependency ever becomes available.
//
// The framework also implements the repo's `//nicwarp:` annotation grammar
// (see DESIGN.md "Determinism invariants"): an annotation is a line comment
// of the form
//
//	//nicwarp:<name> [rationale...]
//
// placed either on the same line as the construct it sanctions or on the
// line immediately above it. Pass.Annotated performs that lookup.
package framework

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and flags.
	Name string
	// Doc is the analyzer's documentation, shown by `nicwarp-vet -list`.
	Doc string
	// Flags holds analyzer-specific flags; the driver re-registers them
	// namespaced as -<name>.<flag>.
	Flags flag.FlagSet
	// Run applies the analyzer to one package, reporting diagnostics and
	// (for fact-bearing analyzers) recording facts about the package's
	// symbols in Pass.Facts.
	Run func(*Pass) error
	// FactsRun, when non-nil, computes only the analyzer's exported facts
	// for a package — no diagnostics. The driver applies it to dependency
	// packages that are loaded for type information but not themselves
	// under analysis, so cross-package facts exist before Run needs them.
	FactsRun func(*Pass) error
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// SuggestedFix is one mechanical rewrite attached to a diagnostic, applied
// by `nicwarp-vet -fix`.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding, mirroring analysis.Diagnostic.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Fixes   []SuggestedFix
}

// Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Annots holds the package's parsed //nicwarp: annotations; Annotated
	// is the convenience lookup analyzers use.
	Annots *AnnotationSet
	// Facts is the run-wide fact store: facts recorded while visiting
	// dependency packages are visible here, and facts this pass records
	// become visible to later packages.
	Facts *FactSet
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotated reports whether the construct at pos carries a well-formed
// `//nicwarp:<name>` annotation: a line comment on the same source line or
// on the line immediately above. Malformed annotations (unknown verb,
// missing reason) never match — they are grammar errors reported by
// CheckAnnotations.
func (p *Pass) Annotated(pos token.Pos, name string) bool {
	return p.Annots.At(p.Fset, pos, name)
}

// newPass assembles a Pass over pkg sharing the run-wide fact store.
// Diagnostics inside _test.go files are suppressed (the loader does not
// parse them, but unitchecker units may).
func newPass(a *Analyzer, pkg *Package, facts *FactSet, sink *[]Diagnostic) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Annots:    CollectAnnotations(pkg.Fset, pkg.Files),
		Facts:     facts,
		Report: func(d Diagnostic) {
			if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
				return
			}
			*sink = append(*sink, d)
		},
	}
}

// Run applies one analyzer to one loaded package and returns its
// diagnostics sorted by position, using a throwaway fact store. Callers
// that need cross-package facts use RunWith.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return RunWith(a, pkg, NewFactSet())
}

// RunWith applies one analyzer to one loaded package against a shared fact
// store and returns its diagnostics sorted by position.
func RunWith(a *Analyzer, pkg *Package, facts *FactSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := newPass(a, pkg, facts, &diags)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// RunFacts applies the analyzer's facts-only pass (if any) to a dependency
// package, recording facts into the shared store without diagnostics.
func RunFacts(a *Analyzer, pkg *Package, facts *FactSet) error {
	if a.FactsRun == nil {
		return nil
	}
	var discard []Diagnostic
	pass := newPass(a, pkg, facts, &discard)
	if err := a.FactsRun(pass); err != nil {
		return fmt.Errorf("%s: facts for %s: %v", a.Name, pkg.Path, err)
	}
	return nil
}

// IsNamed reports whether t is the named type pkgPath.name (after
// unwrapping aliases but not the underlying type).
func IsNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}
