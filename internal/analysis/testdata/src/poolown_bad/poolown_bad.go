// Package poolown_bad exercises the poolown rule's flagging half: reads
// after ownership transfer, escaping stores into undeclared owners, and
// arena interior pointers surviving growth.
package poolown_bad

import "nicwarp/internal/timewarp"

type pool struct {
	free []*timewarp.Event //nicwarp:owns pool free list is the canonical owner of released events
}

//nicwarp:owns put consumes the event
func (p *pool) put(e *timewarp.Event) {
	p.free = append(p.free, e)
}

func (p *pool) get() *timewarp.Event {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		return e
	}
	return &timewarp.Event{}
}

// Reading a field of the event after releasing it.
func useAfterRelease(p *pool, e *timewarp.Event) uint64 {
	p.put(e)
	return e.Payload // want `use of e.Payload after release: ownership transferred to put`
}

// Passing the released event to another call.
func doubleRelease(p *pool, e *timewarp.Event) {
	p.put(e)
	p.put(e) // want `use of e after release: ownership transferred to put`
}

// A transfer before the branch poisons both arms.
func releaseThenBranch(p *pool, e *timewarp.Event, anti bool) int8 {
	p.put(e)
	if anti {
		return e.Sign // want `use of e.Sign after release: ownership transferred to put`
	}
	return 0
}

type stash struct {
	last *timewarp.Event // no //nicwarp:owns: not a sanctioned owner
	held []*timewarp.Event
}

// Storing a pooled pointer in an undeclared field creates a second owner.
func retainInField(s *stash, e *timewarp.Event) {
	s.last = e // want `pooled \*nicwarp/internal/timewarp.Event stored in field s.last, which is not declared an owner`
}

// Appending into an undeclared slice field is the same leak.
func retainInSlice(s *stash, e *timewarp.Event) {
	s.held = append(s.held, e) // want `pooled .* stored in field s.held, which is not declared an owner`
}

// Packing into a composite literal field is the same leak.
func retainInLiteral(e *timewarp.Event) *stash {
	return &stash{
		last: e, // want `pooled \*nicwarp/internal/timewarp.Event packed into field stash.last, which is not declared an owner`
	}
}

var lastSeen *timewarp.Event

// Package-level variables are never sanctioned owners.
func retainGlobally(e *timewarp.Event) {
	lastSeen = e // want `pooled \*nicwarp/internal/timewarp.Event stored in package-level lastSeen`
}

// Channel sends hand the pointer to another goroutine.
func shipAcross(ch chan *timewarp.Event, e *timewarp.Event) {
	ch <- e // want `pooled \*nicwarp/internal/timewarp.Event sent on a channel`
}

type slot struct {
	seq uint32
	val int64
}

type table struct {
	arena []slot //nicwarp:owns arena slots are addressed by index, never by retained pointer
}

//nicwarp:grows append may reallocate the backing array
func (t *table) alloc() int {
	t.arena = append(t.arena, slot{})
	return len(t.arena) - 1
}

// The interior pointer dangles into the old backing array after alloc.
func danglingInterior(t *table, i int) int64 {
	s := &t.arena[i]
	t.alloc()
	return s.val // want `use of s.val after arena growth: points into t.arena`
}
