package police

import (
	"testing"

	"nicwarp/internal/timewarp"
)

func small(stations int) Params {
	p := DefaultConfig(stations)
	p.IncidentsPerStation = 3
	p.IncidentMean = 300
	return p
}

func TestParamsValidate(t *testing.T) {
	if DefaultConfig(900).Validate() != nil {
		t.Fatal("paper config must validate")
	}
	bad := []Params{
		{Stations: 0, Centres: 8, QueryFanout: 1, IncidentMean: 1},
		{Stations: 10, Centres: 0, QueryFanout: 1, IncidentMean: 1},
		{Stations: 10, Centres: 8, QueryFanout: 0, IncidentMean: 1},
		{Stations: 10, Centres: 8, QueryFanout: 1, IncidentMean: 0},
		{Stations: 10, Centres: 8, QueryFanout: 1, IncidentMean: 1, BusyFraction: 1.5},
		{Stations: 1 << 25, Centres: 8, QueryFanout: 1, IncidentMean: 1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("params %d accepted", i)
		}
	}
}

func TestPayloadEncoding(t *testing.T) {
	p := payload(msgAssign, 123456, 9999)
	if payloadKind(p) != msgAssign || payloadIncident(p) != 123456 || payloadStation(p) != 9999 {
		t.Fatalf("round trip failed: kind=%d inc=%d st=%d",
			payloadKind(p), payloadIncident(p), payloadStation(p))
	}
}

func TestBuildCounts(t *testing.T) {
	app := New(small(100))
	objs, place := app.Build(8, 1)
	if len(objs) != 100+8 {
		t.Fatalf("objects = %d, want 108", len(objs))
	}
	for id := range objs {
		lp := place(id)
		if lp < 0 || lp >= 8 {
			t.Fatalf("object %d on invalid LP %d", id, lp)
		}
	}
}

func TestCentreAssignmentCrossesLPs(t *testing.T) {
	p := small(64)
	app := New(p)
	_, place := app.Build(8, 1)
	cross := 0
	for i := 0; i < p.Stations; i++ {
		stLP := place(p.stationID(i))
		cLP := place(p.centreID(p.centreOf(i)))
		if stLP != cLP {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("no station-centre pair crosses LPs; the model would not communicate")
	}
}

func TestSequentialDeterminismAndTermination(t *testing.T) {
	app := New(small(60))
	run := func() timewarp.SequentialResult {
		objs, _ := app.Build(8, 11)
		return timewarp.Sequential(objs, 5_000_000)
	}
	a, b := run(), run()
	if a.Digest != b.Digest || a.TotalEvents != b.TotalEvents {
		t.Fatal("oracle not deterministic")
	}
	// Every incident produces at least report + fanout queries + replies.
	min := 60 * 3 * (1 + 1)
	if a.TotalEvents < min {
		t.Fatalf("events = %d, expected at least %d", a.TotalEvents, min)
	}
}

func TestIncidentsAllAccountedFor(t *testing.T) {
	p := small(40)
	app := New(p)
	objs, _ := app.Build(4, 5)
	timewarp.Sequential(objs, 5_000_000)
	// After quiescence every incident was resolved or abandoned.
	var resolved, abandoned, raised uint64
	for c := 0; c < p.Centres; c++ {
		obj := objs[p.centreID(c)].(*centre)
		resolved += obj.st.resolved
		abandoned += obj.st.abandoned
		raised += uint64(obj.st.nextIncident)
		if obj.st.openCount != 0 {
			t.Fatalf("centre %d still has %d open incidents", c, obj.st.openCount)
		}
	}
	if raised != uint64(p.Stations*p.IncidentsPerStation) {
		t.Fatalf("raised %d incidents, want %d", raised, p.Stations*p.IncidentsPerStation)
	}
	if resolved+abandoned != raised {
		t.Fatalf("resolved %d + abandoned %d != raised %d", resolved, abandoned, raised)
	}
	if resolved == 0 {
		t.Fatal("nothing resolved; dispatch path broken")
	}
}

func TestStationBusyPath(t *testing.T) {
	// With BusyFraction 1 every query comes back busy and every incident is
	// abandoned.
	p := small(30)
	p.BusyFraction = 1
	objs, _ := New(p).Build(4, 2)
	timewarp.Sequential(objs, 5_000_000)
	var resolved, abandoned uint64
	for c := 0; c < p.Centres; c++ {
		obj := objs[p.centreID(c)].(*centre)
		resolved += obj.st.resolved
		abandoned += obj.st.abandoned
	}
	if resolved != 0 {
		t.Fatalf("resolved %d incidents with all units busy", resolved)
	}
	if abandoned != uint64(p.Stations*p.IncidentsPerStation) {
		t.Fatalf("abandoned = %d, want all", abandoned)
	}
}

func TestSeedChangesResults(t *testing.T) {
	app := New(small(50))
	o1, _ := app.Build(8, 1)
	o2, _ := app.Build(8, 2)
	r1 := timewarp.Sequential(o1, 5_000_000)
	r2 := timewarp.Sequential(o2, 5_000_000)
	if r1.Digest == r2.Digest {
		t.Fatal("different seeds gave identical digests")
	}
}

func TestSingleCentreConfiguration(t *testing.T) {
	p := small(20)
	p.Centres = 1
	objs, _ := New(p).Build(2, 3)
	res := timewarp.Sequential(objs, 5_000_000)
	if res.TotalEvents == 0 {
		t.Fatal("single-centre run did nothing")
	}
}
