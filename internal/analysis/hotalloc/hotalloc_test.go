package hotalloc_test

import (
	"testing"

	"nicwarp/internal/analysis/framework/analysistest"
	"nicwarp/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer,
		"hotalloc_ok", "hotalloc_bad")
}
